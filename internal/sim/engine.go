package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/availability"
	"repro/internal/cluster"
	"repro/internal/consistency"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/ring"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/workload"
)

// FailureEvent kills, recovers and/or joins servers at the start of
// the given epoch (Fig. 10 removes 30 random servers at epoch 290;
// §III-G also exercises node join).
type FailureEvent struct {
	Epoch   int
	Fail    []cluster.ServerID
	Recover []cluster.ServerID
	// Join adds one brand-new server per listed datacenter.
	Join []topology.DCID
}

// Engine drives one policy over one workload. Create with New, then
// Run (or Step repeatedly) and read the recorded series.
type Engine struct {
	cfg     Config
	cluster *cluster.Cluster
	router  *network.Router
	hashing *ring.Ring
	gen     workload.Generator
	pol     policy.Policy
	tracker *traffic.Tracker
	rec     *metrics.Recorder
	rng     *stats.RNG

	failures    []FailureEvent
	minReplicas int
	epoch       int

	// Consistency-maintenance extension (nil unless WriteLambda > 0).
	writes   *consistency.Tracker
	writeRNG *stats.RNG
	lastSync consistency.SyncStats

	// Churn state: epoch at which a churn-failed server recovers.
	churnRNG  *stats.RNG
	downUntil map[cluster.ServerID]int

	// Cumulative action counters behind Figs. 5–7.
	cumReplCost float64
	cumMigrCost float64
	cumRepl     int
	cumMigr     int

	// Per-epoch action counts (reset by recordEpoch).
	epochRepl    int
	epochMigr    int
	epochSuicide int

	// removeReplica is the migration-removal step; a seam so tests can
	// exercise the half-completed-migration accounting.
	removeReplica func(partition int, s cluster.ServerID) error

	// Scratch state reused across epochs.
	outcomes []partitionOutcome

	// Persistent worker pool (started lazily on the first Step, stopped
	// by Close). Workers steal chunks of the partition index space via
	// nextChunk and keep their scratch arenas across epochs.
	workers   []*epochWorker
	workerWG  sync.WaitGroup
	quit      chan struct{}
	closeOnce sync.Once
	nextChunk atomic.Int64
	curDemand *workload.Matrix

	// recordEpoch/mergeOutcomes scratch, reused across epochs.
	servedScratch  []int
	capScratch     []int
	loadScratch    []float64
	hopHistScratch []int
	servedByDC     []int
	recoveries     []cluster.ServerID
}

// epochWorker is one pool worker's scratch arena. Everything in it is
// touched only by its owning goroutine during a serve round, so the
// steady-state epoch loop runs allocation-free.
type epochWorker struct {
	prop     *traffic.Propagator
	capacity []int // per-DC replica capacity of the current partition
	slots    []allocSlot
	rems     []allocRem
	err      error
	wake     chan struct{}
}

type allocSlot struct {
	idx  int // index into partitionOutcome.servers
	capc int
}

type allocRem struct {
	idx  int
	frac float64
}

// partitionOutcome is one partition's epoch serving result, produced by
// a worker and merged deterministically by the engine.
type partitionOutcome struct {
	traffic  []int // arrivals per DC (copied out of the propagator)
	unserved int
	total    int
	hopsSum  int
	// servedOn[i] pairs with servers[i]: this partition's replicas and
	// the queries each served this epoch.
	servers  []cluster.ServerID
	servedOn []int
	hopHist  []int // served queries per lookup hop count
	skip     bool  // partition had no primary this epoch
}

// New builds an engine: it projects every server onto the consistent-
// hashing ring, seeds each partition's primary copy at its ring owner,
// and prepares the traffic tracker.
func New(cl *cluster.Cluster, rt *network.Router, gen workload.Generator, pol policy.Policy, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cl.World() != rt.World() {
		return nil, fmt.Errorf("sim: cluster and router disagree on the world")
	}
	minRep, err := availability.MinReplicas(cfg.FailureRate, cfg.MinAvailability)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	tr, err := traffic.NewTracker(cl.NumPartitions(), cl.World().NumDCs(), cfg.Thresholds)
	if err != nil {
		return nil, err
	}
	if cfg.Latency == (metrics.LatencyModel{}) {
		cfg.Latency = metrics.DefaultLatencyModel()
	}
	dcs := cl.World().NumDCs()
	e := &Engine{
		cfg:            cfg,
		cluster:        cl,
		router:         rt,
		hashing:        ring.New(),
		gen:            gen,
		pol:            pol,
		tracker:        tr,
		rec:            metrics.NewRecorder(),
		rng:            stats.NewRNG(cfg.Seed ^ 0x5157),
		minReplicas:    minRep,
		outcomes:       make([]partitionOutcome, cl.NumPartitions()),
		quit:           make(chan struct{}),
		hopHistScratch: make([]int, dcs),
		servedByDC:     make([]int, dcs),
	}
	e.removeReplica = func(partition int, s cluster.ServerID) error {
		return e.cluster.RemoveReplica(partition, s)
	}
	for i := 0; i < cl.NumServers(); i++ {
		if err := e.hashing.AddServer(i, cfg.TokensPerServer); err != nil {
			return nil, err
		}
	}
	if cfg.WriteLambda > 0 {
		delta := cfg.WriteDeltaSize
		if delta == 0 {
			delta = 4 << 10
		}
		syncBW := cfg.SyncBandwidth
		if syncBW == 0 {
			syncBW = 1 << 20
		}
		tr, err := consistency.New(cl.NumPartitions(), delta, syncBW)
		if err != nil {
			return nil, err
		}
		e.writes = tr
		e.writeRNG = stats.NewRNG(cfg.Seed ^ 0x3217E5)
	}
	if cfg.ChurnFailProb > 0 {
		e.churnRNG = stats.NewRNG(cfg.Seed ^ 0xC4012)
		e.downUntil = make(map[cluster.ServerID]int)
	}
	// Seed primaries at ring owners (§II-B partitioning).
	for p := 0; p < cl.NumPartitions(); p++ {
		if err := e.seedPartition(p); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// seedPartition places the partition's first copy on its ring owner (or
// the first hostable successor).
func (e *Engine) seedPartition(p int) error {
	pos := ring.HashUint64(uint64(p))
	for _, vn := range e.hashing.Successors(pos, e.cluster.NumServers()) {
		s := cluster.ServerID(vn.Server)
		if e.cluster.CanHost(p, s) {
			return e.cluster.AddReplica(p, s)
		}
	}
	return fmt.Errorf("sim: no server can host partition %d", p)
}

// ScheduleFailure registers a failure/recovery event. Events may be
// added in any order before or during the run; events for past epochs
// are ignored.
func (e *Engine) ScheduleFailure(ev FailureEvent) {
	e.failures = append(e.failures, ev)
	sort.SliceStable(e.failures, func(i, j int) bool { return e.failures[i].Epoch < e.failures[j].Epoch })
}

// Cluster exposes the underlying cluster (read-mostly, for tests and
// examples).
func (e *Engine) Cluster() *cluster.Cluster { return e.cluster }

// Tracker exposes the traffic tracker.
func (e *Engine) Tracker() *traffic.Tracker { return e.tracker }

// Recorder exposes the metric series recorded so far.
func (e *Engine) Recorder() *metrics.Recorder { return e.rec }

// Epoch returns the number of epochs completed.
func (e *Engine) Epoch() int { return e.epoch }

// MinReplicas returns the eq. (14) availability lower limit in force.
func (e *Engine) MinReplicas() int { return e.minReplicas }

// Policy returns the policy under simulation.
func (e *Engine) Policy() policy.Policy { return e.pol }

// Run executes the configured number of epochs and returns the metric
// recorder. It may be called once per engine.
func (e *Engine) Run() (*metrics.Recorder, error) {
	for e.epoch < e.cfg.Epochs {
		if err := e.Step(); err != nil {
			return nil, err
		}
	}
	if err := e.rec.Validate(); err != nil {
		return nil, err
	}
	return e.rec, nil
}

// Step simulates one epoch.
func (e *Engine) Step() error {
	t := e.epoch
	e.applyChurn(t)
	e.applyFailures(t)
	e.cluster.BeginEpoch()
	e.tracker.BeginEpoch()

	demand := e.gen.Epoch(t)
	if demand.Partitions() != e.cluster.NumPartitions() || demand.DCs() != e.cluster.World().NumDCs() {
		return fmt.Errorf("sim: demand matrix %dx%d does not match world %dx%d",
			demand.Partitions(), demand.DCs(), e.cluster.NumPartitions(), e.cluster.World().NumDCs())
	}

	if err := e.serveEpoch(demand); err != nil {
		return err
	}
	e.mergeOutcomes()
	e.tracker.EndEpoch()
	e.cluster.EndEpoch()

	ctx := &policy.Context{
		Epoch:           t,
		Cluster:         e.cluster,
		Tracker:         e.tracker,
		Router:          e.router,
		Ring:            e.hashing,
		Demand:          demand,
		FailureRate:     e.cfg.FailureRate,
		MinAvailability: e.cfg.MinAvailability,
		MinReplicas:     e.minReplicas,
		HubCandidates:   e.cfg.HubCandidates,
		RNG:             e.rng.Stream(uint64(t)),
	}
	dec := e.pol.Decide(ctx)
	e.applyDecision(dec)
	e.stepConsistency(t)

	e.recordEpoch(demand)
	e.epoch++
	return nil
}

// stepConsistency runs one epoch of the write/anti-entropy extension:
// Poisson writes land at each primary, the tracker reconciles against
// whatever placement the policy produced, and replicas catch up within
// their sync budgets. The resulting staleness series are recorded by
// recordEpoch.
func (e *Engine) stepConsistency(t int) {
	if e.writes == nil {
		return
	}
	rng := e.writeRNG.Stream(uint64(t))
	for p := 0; p < e.cluster.NumPartitions(); p++ {
		e.writes.ApplyWrites(p, rng.Poisson(e.cfg.WriteLambda))
	}
	e.writes.Reconcile(e.cluster)
	e.lastSync = e.writes.SyncEpoch(e.cluster)
}

// applyChurn fails each alive server independently with the configured
// probability and revives servers whose MTTR elapsed. Deterministic for
// a fixed seed (one RNG stream per epoch).
func (e *Engine) applyChurn(t int) {
	if e.churnRNG == nil {
		return
	}
	mttr := e.cfg.ChurnMTTR
	if mttr == 0 {
		mttr = 20
	}
	// Collect due recoveries and apply them in ascending ServerID order:
	// map iteration order is randomised, and recovering servers mutates
	// the cluster and the hash ring, so a fixed order is what makes churn
	// runs bit-reproducible for a fixed seed.
	recov := e.recoveries[:0]
	for s, until := range e.downUntil {
		if until <= t {
			recov = append(recov, s)
		}
	}
	sort.Slice(recov, func(i, j int) bool { return recov[i] < recov[j] })
	e.recoveries = recov
	for _, s := range recov {
		e.cluster.RecoverServer(s)
		_ = e.hashing.AddServer(int(s), e.cfg.TokensPerServer)
		delete(e.downUntil, s)
	}
	rng := e.churnRNG.Stream(uint64(t))
	for id := 0; id < e.cluster.NumServers(); id++ {
		s := cluster.ServerID(id)
		if !e.cluster.Server(s).Alive() {
			continue
		}
		if rng.Bool(e.cfg.ChurnFailProb) {
			e.cluster.FailServer(s)
			e.hashing.RemoveServer(int(s))
			e.downUntil[s] = t + mttr
		}
	}
}

// applyFailures executes scheduled fail/recover events for epoch t,
// keeping the hash ring in sync and re-seeding partitions that lost
// their last copy.
func (e *Engine) applyFailures(t int) {
	for _, ev := range e.failures {
		if ev.Epoch != t {
			continue
		}
		for _, s := range ev.Fail {
			if e.cluster.Server(s).Alive() {
				e.cluster.FailServer(s)
				e.hashing.RemoveServer(int(s))
			}
		}
		for _, s := range ev.Recover {
			if !e.cluster.Server(s).Alive() {
				e.cluster.RecoverServer(s)
				// Ignore the error: re-adding a recovered server is only
				// invalid if it never left, which the guard above excludes.
				_ = e.hashing.AddServer(int(s), e.cfg.TokensPerServer)
			}
		}
		for _, dc := range ev.Join {
			s, err := e.cluster.JoinServer(dc)
			if err != nil {
				continue // unknown DC in a user-supplied event: skip
			}
			_ = e.hashing.AddServer(int(s), e.cfg.TokensPerServer)
		}
	}
	// Re-seed partitions whose last copy died (restored from archival
	// storage; the paper's Fig. 10 system keeps running after mass
	// failure).
	for p := 0; p < e.cluster.NumPartitions(); p++ {
		if e.cluster.Primary(p) < 0 {
			_ = e.seedPartition(p)
		}
	}
}

// startPool spins up the persistent worker goroutines. Called lazily by
// the first serveEpoch so engines that are built but never stepped cost
// nothing; the pool then lives until Close.
func (e *Engine) startPool() {
	workers := e.cfg.workers()
	if parts := e.cluster.NumPartitions(); workers > parts {
		workers = parts
	}
	var orders [][]topology.DCID
	if e.cfg.Serving == ServeNearest {
		orders = traffic.NearestOrder(e.router)
	}
	dcs := e.cluster.World().NumDCs()
	e.workers = make([]*epochWorker, workers)
	for w := range e.workers {
		wk := &epochWorker{
			prop:     traffic.NewPropagator(e.router),
			capacity: make([]int, dcs),
			wake:     make(chan struct{}, 1),
		}
		if orders != nil {
			wk.prop.ShareNearestOrder(orders)
		}
		e.workers[w] = wk
		go e.workerLoop(wk)
	}
}

// workerLoop is one pool goroutine: woken once per epoch, it steals
// chunks of the partition index space until the epoch is drained, then
// parks until the next round (or Close).
func (e *Engine) workerLoop(wk *epochWorker) {
	for {
		select {
		case <-e.quit:
			return
		case <-wk.wake:
		}
		parts := int64(e.cluster.NumPartitions())
		chunk := parts / int64(len(e.workers)*8)
		if chunk < 1 {
			chunk = 1
		}
		for {
			lo := e.nextChunk.Add(chunk) - chunk
			if lo >= parts {
				break
			}
			hi := lo + chunk
			if hi > parts {
				hi = parts
			}
			for p := lo; p < hi && wk.err == nil; p++ {
				if err := e.servePartition(wk, int(p), e.curDemand); err != nil {
					wk.err = err
				}
			}
		}
		e.workerWG.Done()
	}
}

// Close stops the worker pool. It is idempotent and safe on engines
// that never stepped; after Close the engine must not be stepped again.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.quit) })
}

// serveEpoch propagates every partition's demand across the persistent
// worker pool. Each worker owns its scratch arena and writes only the
// outcome slots of partitions it stole, so the pass is race-free and
// the merged result is deterministic regardless of worker count.
func (e *Engine) serveEpoch(demand *workload.Matrix) error {
	if e.workers == nil {
		e.startPool()
	}
	e.curDemand = demand
	e.nextChunk.Store(0)
	e.workerWG.Add(len(e.workers))
	for _, wk := range e.workers {
		wk.err = nil
		wk.wake <- struct{}{}
	}
	e.workerWG.Wait()
	e.curDemand = nil
	// First error in worker order, for a deterministic failure report.
	for _, wk := range e.workers {
		if wk.err != nil {
			return wk.err
		}
	}
	return nil
}

// servePartition computes one partition's epoch outcome into
// e.outcomes[p]. Only the worker that stole p touches that slot.
func (e *Engine) servePartition(wk *epochWorker, p int, demand *workload.Matrix) error {
	out := &e.outcomes[p]
	primary := e.cluster.Primary(p)
	if primary < 0 {
		out.skip = true
		return nil
	}
	out.skip = false

	out.servers = e.cluster.AppendReplicaServers(out.servers[:0], p)
	servers := out.servers
	capacity := wk.capacity
	for d := range capacity {
		capacity[d] = 0
	}
	for _, s := range servers {
		capacity[e.cluster.DCOf(s)] += e.cluster.Server(s).ReplicaCapacity
	}
	var res *traffic.ServeResult
	var err error
	if e.cfg.Serving == ServePath {
		res, err = wk.prop.Propagate(e.cluster.DCOf(primary), demand.Q[p], capacity)
	} else {
		res, err = wk.prop.ServeNearest(e.cluster.DCOf(primary), demand.Q[p], capacity)
	}
	if err != nil {
		return err
	}

	// Copy the reusable result out.
	if cap(out.traffic) < len(res.TrafficByDC) {
		out.traffic = make([]int, len(res.TrafficByDC))
	}
	out.traffic = out.traffic[:len(res.TrafficByDC)]
	copy(out.traffic, res.TrafficByDC)
	out.unserved = res.Unserved
	out.total = res.TotalQueries
	out.hopsSum = res.HopsSum
	if cap(out.hopHist) < len(res.HopHist) {
		out.hopHist = make([]int, len(res.HopHist))
	}
	out.hopHist = out.hopHist[:len(res.HopHist)]
	copy(out.hopHist, res.HopHist)

	// Split each datacenter's served queries across its replicas in
	// proportion to capacity.
	if cap(out.servedOn) < len(servers) {
		out.servedOn = make([]int, len(servers))
	}
	out.servedOn = out.servedOn[:len(servers)]
	for i := range out.servedOn {
		out.servedOn[i] = 0
	}
	for d, served := range res.ServedByDC {
		if served == 0 {
			continue
		}
		e.allocateWithinDC(wk, topology.DCID(d), served, out)
	}
	return nil
}

// allocateWithinDC distributes served queries among the partition's
// replicas inside one datacenter proportionally to replica capacity,
// using largest-remainder rounding (deterministic, never exceeding any
// replica's capacity because the propagator capped served at the DC
// total). All scratch lives in the worker arena.
func (e *Engine) allocateWithinDC(wk *epochWorker, dc topology.DCID, served int, out *partitionOutcome) {
	slots := wk.slots[:0]
	capSum := 0
	for i, s := range out.servers {
		if e.cluster.DCOf(s) == dc {
			c := e.cluster.Server(s).ReplicaCapacity
			slots = append(slots, allocSlot{i, c})
			capSum += c
		}
	}
	wk.slots = slots
	if capSum == 0 {
		return
	}
	assigned := 0
	rems := wk.rems[:0]
	for _, sl := range slots {
		exact := float64(served) * float64(sl.capc) / float64(capSum)
		base := int(exact)
		out.servedOn[sl.idx] += base
		assigned += base
		rems = append(rems, allocRem{sl.idx, exact - float64(base)})
	}
	wk.rems = rems
	// Insertion sort by (remainder desc, index asc): the slot count is
	// bounded by the replicas of one partition in one DC, and avoiding
	// sort.Slice keeps the hot path allocation-free.
	for i := 1; i < len(rems); i++ {
		r := rems[i]
		j := i - 1
		for j >= 0 && (rems[j].frac < r.frac || (rems[j].frac == r.frac && rems[j].idx > r.idx)) {
			rems[j+1] = rems[j]
			j--
		}
		rems[j+1] = r
	}
	for i := 0; assigned < served && i < len(rems); i++ {
		out.servedOn[rems[i].idx]++
		assigned++
	}
}

// mergeOutcomes folds all partition outcomes into the tracker and the
// servers' arrival observers, in partition order for determinism.
func (e *Engine) mergeOutcomes() {
	var res traffic.ServeResult
	servedByDC := e.servedByDC
	for p := range e.outcomes {
		out := &e.outcomes[p]
		if out.skip {
			continue
		}
		for d := range servedByDC {
			servedByDC[d] = 0
		}
		for i, s := range out.servers {
			servedByDC[e.cluster.DCOf(s)] += out.servedOn[i]
		}
		res.TrafficByDC = out.traffic
		res.ServedByDC = servedByDC
		res.TotalQueries = out.total
		res.Unserved = out.unserved
		primary := e.cluster.Primary(p)
		e.tracker.Observe(p, e.cluster.DCOf(primary), &res)
		for i, s := range out.servers {
			e.cluster.Server(s).RecordArrivals(out.servedOn[i], out.servedOn[i])
		}
		// Overflow pounds on the primary: it arrived there and was
		// turned away, which is exactly what the blocking model should
		// see.
		if out.unserved > 0 {
			if primary := e.cluster.Primary(p); primary >= 0 {
				e.cluster.Server(primary).RecordArrivals(out.unserved, 0)
			}
		}
	}
}

// applyDecision enforces physical constraints and charges eq. (1)
// costs. Invalid or unaffordable actions are dropped silently — a
// policy requesting the impossible models a request message that its
// receiver rejects.
func (e *Engine) applyDecision(dec policy.Decision) {
	size := e.cluster.Spec().PartitionSize
	for _, rep := range dec.Replications {
		if !e.cluster.HasReplica(rep.Partition, rep.Source) || !e.cluster.CanHost(rep.Partition, rep.Target) {
			continue
		}
		if !e.cluster.ConsumeReplicationBW(rep.Source, size) {
			continue
		}
		if err := e.cluster.AddReplica(rep.Partition, rep.Target); err != nil {
			continue
		}
		cost, err := metrics.ReplicationCost(
			e.cluster.ReplicaDistance(rep.Source, rep.Target),
			e.cfg.FailureRate, size, e.cluster.Server(rep.Source).ReplicationBW)
		if err == nil {
			e.cumReplCost += cost
			e.cumRepl++
			e.epochRepl++
		}
	}
	for _, mig := range dec.Migrations {
		if !e.cluster.HasReplica(mig.Partition, mig.From) || !e.cluster.CanHost(mig.Partition, mig.To) {
			continue
		}
		if !e.cluster.ConsumeMigrationBW(mig.From, size) {
			continue
		}
		if err := e.cluster.AddReplica(mig.Partition, mig.To); err != nil {
			continue
		}
		wasPrimary := e.cluster.Primary(mig.Partition) == mig.From
		if err := e.removeReplica(mig.Partition, mig.From); err != nil {
			// Could not complete the move: the new copy already exists and
			// migration bandwidth was spent, which is physically a
			// replication. Charge it as one so the Figs. 5–7 cost and
			// action series do not silently under-report.
			cost, cerr := metrics.ReplicationCost(
				e.cluster.ReplicaDistance(mig.From, mig.To),
				e.cfg.FailureRate, size, e.cluster.Server(mig.From).MigrationBW)
			if cerr == nil {
				e.cumReplCost += cost
				e.cumRepl++
				e.epochRepl++
			}
			continue
		}
		if wasPrimary {
			_ = e.cluster.SetPrimary(mig.Partition, mig.To)
		}
		cost, err := metrics.ReplicationCost(
			e.cluster.ReplicaDistance(mig.From, mig.To),
			e.cfg.FailureRate, size, e.cluster.Server(mig.From).MigrationBW)
		if err == nil {
			e.cumMigrCost += cost
			e.cumMigr++
			e.epochMigr++
		}
	}
	for _, sui := range dec.Suicides {
		if e.cluster.Primary(sui.Partition) == sui.Server {
			continue // the primary never suicides
		}
		if e.cluster.RemoveReplica(sui.Partition, sui.Server) == nil {
			e.epochSuicide++
		}
	}
}

// recordEpoch appends one point to every metric series. Its per-replica
// scratch buffers live on the engine and are reused across epochs.
func (e *Engine) recordEpoch(demand *workload.Matrix) {
	servedPerReplica, capPerReplica := e.servedScratch[:0], e.capScratch[:0]
	hopHist := e.hopHistScratch
	for h := range hopHist {
		hopHist[h] = 0
	}
	totalQueries, totalHops, totalUnserved := 0, 0, 0
	for p := range e.outcomes {
		out := &e.outcomes[p]
		if out.skip {
			continue
		}
		totalQueries += out.total
		totalHops += out.hopsSum
		totalUnserved += out.unserved
		for h, n := range out.hopHist {
			hopHist[h] += n
		}
		for i, s := range out.servers {
			servedPerReplica = append(servedPerReplica, out.servedOn[i])
			capPerReplica = append(capPerReplica, e.cluster.Server(s).ReplicaCapacity)
		}
	}
	e.servedScratch, e.capScratch = servedPerReplica, capPerReplica
	util, err := metrics.ReplicaUtilization(servedPerReplica, capPerReplica)
	if err != nil {
		util = 0
	}
	// eq. (24): l_i is the workload of each *virtual node* — the load
	// imbalance L_b of eq. (25) is the standard deviation over replica
	// workloads, not over physical servers. Workload is normalised by
	// the replica's capacity: servers are heterogeneous (§III-A), so a
	// node's "load" is how hard it works relative to its capability —
	// this is what the §II-H blocking-probability placement equalises.
	// A zero-capacity replica (impossible through cluster validation,
	// but defended against here) is excluded rather than poisoning the
	// series with NaN/Inf.
	loads := e.loadScratch[:0]
	for i, v := range servedPerReplica {
		if capPerReplica[i] > 0 {
			loads = append(loads, float64(v)/float64(capPerReplica[i]))
		}
	}
	e.loadScratch = loads
	numAlive := e.cluster.NumAlive()

	totalReplicas := e.cluster.TotalReplicas()
	e.rec.Append(metrics.SeriesUtilization, util)
	e.rec.Append(metrics.SeriesTotalReplicas, float64(totalReplicas))
	e.rec.Append(metrics.SeriesAvgReplicas, float64(totalReplicas)/float64(e.cluster.NumPartitions()))
	e.rec.Append(metrics.SeriesReplCost, e.cumReplCost)
	e.rec.Append(metrics.SeriesReplCostAvg, safeDiv(e.cumReplCost, float64(e.cumRepl)))
	e.rec.Append(metrics.SeriesMigrTimes, float64(e.cumMigr))
	e.rec.Append(metrics.SeriesMigrTimesAvg, safeDiv(float64(e.cumMigr), float64(totalReplicas)))
	e.rec.Append(metrics.SeriesMigrCost, e.cumMigrCost)
	e.rec.Append(metrics.SeriesMigrCostAvg, safeDiv(e.cumMigrCost, float64(e.cumMigr)))
	e.rec.Append(metrics.SeriesLoadImbalance, metrics.RelativeLoadImbalance(loads))
	e.rec.Append(metrics.SeriesPathLength, safeDiv(float64(totalHops), float64(totalQueries)))
	e.rec.Append(metrics.SeriesUnservedFrac, safeDiv(float64(totalUnserved), float64(totalQueries)))
	e.rec.Append(metrics.SeriesAliveServers, float64(numAlive))
	e.rec.Append(metrics.SeriesLostPartitions, float64(e.cluster.LostPartitions()))
	e.rec.Append(metrics.SeriesReplActions, float64(e.epochRepl))
	e.rec.Append(metrics.SeriesMigrActions, float64(e.epochMigr))
	e.rec.Append(metrics.SeriesSuicideActions, float64(e.epochSuicide))
	e.epochRepl, e.epochMigr, e.epochSuicide = 0, 0, 0
	sla := e.cfg.Latency.Stats(hopHist, totalUnserved)
	e.rec.Append(metrics.SeriesSLAFrac, sla.WithinSLA)
	e.rec.Append(metrics.SeriesLatencyMean, sla.MeanMs)
	e.rec.Append(metrics.SeriesLatencyP999, sla.P999Ms)
	if e.writes != nil {
		e.rec.Append(metrics.SeriesStalenessMean, e.lastSync.MeanStaleness)
		e.rec.Append(metrics.SeriesStalenessMax, float64(e.lastSync.MaxStaleness))
		e.rec.Append(metrics.SeriesStaleFrac, e.lastSync.StaleReplicaFrac)
		e.rec.Append(metrics.SeriesSyncBytes, float64(e.writes.SyncBytes()))
		e.rec.Append(metrics.SeriesLostWrites, float64(e.writes.LostWrites()))
	}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
