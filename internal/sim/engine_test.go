package sim

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/topology"
	"repro/internal/workload"
)

// buildEngine constructs a small engine for unit tests.
func buildEngine(t *testing.T, pol policy.Policy, cfg Config, flash bool) *Engine {
	t.Helper()
	w := topology.PaperWorld()
	rt, err := network.NewRouter(w)
	if err != nil {
		t.Fatal(err)
	}
	spec := cluster.DefaultSpec()
	spec.Partitions = 16
	cl, err := cluster.New(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	wcfg := workload.Config{Partitions: 16, DCs: w.NumDCs(), Lambda: 300, Seed: cfg.Seed}
	var gen workload.Generator
	if flash {
		gen, err = workload.NewPaperFlashCrowd(wcfg, w, cfg.Epochs)
	} else {
		gen, err = workload.NewUniform(wcfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(cl, rt, gen, pol, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng
}

func TestConfigValidation(t *testing.T) {
	muts := []func(*Config){
		func(c *Config) { c.Epochs = 0 },
		func(c *Config) { c.FailureRate = -0.1 },
		func(c *Config) { c.FailureRate = 1 },
		func(c *Config) { c.MinAvailability = 1 },
		func(c *Config) { c.HubCandidates = 0 },
		func(c *Config) { c.TokensPerServer = 0 },
		func(c *Config) { c.Workers = -1 },
		func(c *Config) { c.Serving = ServingModel(9) },
		func(c *Config) { c.Thresholds.Beta = 0.5 },
	}
	for i, mut := range muts {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestServingModelString(t *testing.T) {
	if ServePath.String() != "path" || ServeNearest.String() != "nearest" {
		t.Fatal("serving model names wrong")
	}
	if ServingModel(9).String() == "" {
		t.Fatal("unknown model has empty string")
	}
}

func TestEnginePrimariesSeeded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 1
	eng := buildEngine(t, core.NewRFH(), cfg, false)
	for p := 0; p < eng.Cluster().NumPartitions(); p++ {
		if eng.Cluster().Primary(p) < 0 {
			t.Fatalf("partition %d has no primary", p)
		}
		if eng.Cluster().ReplicaCount(p) != 1 {
			t.Fatalf("partition %d seeded with %d copies", p, eng.Cluster().ReplicaCount(p))
		}
	}
	if eng.MinReplicas() != 2 {
		t.Fatalf("MinReplicas = %d, want 2 for f=0.1, A=0.8", eng.MinReplicas())
	}
}

func TestEngineRejectsMismatchedWorlds(t *testing.T) {
	w1 := topology.PaperWorld()
	w2 := topology.PaperWorld()
	rt, _ := network.NewRouter(w2)
	cl, _ := cluster.New(w1, cluster.DefaultSpec())
	gen, _ := workload.NewUniform(workload.Config{Partitions: 64, DCs: 10, Lambda: 1, Seed: 1})
	if eng, err := New(cl, rt, gen, core.NewRFH(), DefaultConfig()); err == nil {
		eng.Close()
		t.Fatal("engine accepted cluster and router over different worlds")
	}
}

func TestEngineRejectsBadDemandDimensions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 1
	w := topology.PaperWorld()
	rt, _ := network.NewRouter(w)
	cl, _ := cluster.New(w, cluster.DefaultSpec())
	bad := &workload.Func{GenName: "bad", Fn: func(int) *workload.Matrix {
		return workload.NewMatrix(3, 3)
	}}
	eng, err := New(cl, rt, bad, core.NewRFH(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Step(); err == nil {
		t.Fatal("mismatched demand matrix accepted")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() *metrics.Recorder {
		cfg := DefaultConfig()
		cfg.Epochs = 30
		cfg.Seed = 77
		eng := buildEngine(t, core.NewRFH(), cfg, false)
		rec, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	a, b := run(), run()
	for _, name := range a.Names() {
		sa, sb := a.Series(name), b.Series(name)
		for i := range sa.Points {
			if sa.Points[i] != sb.Points[i] {
				t.Fatalf("series %s diverges at epoch %d: %g vs %g", name, i, sa.Points[i], sb.Points[i])
			}
		}
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) *metrics.Recorder {
		cfg := DefaultConfig()
		cfg.Epochs = 25
		cfg.Seed = 5
		cfg.Workers = workers
		eng := buildEngine(t, core.NewRFH(), cfg, false)
		rec, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	a, b, c := run(1), run(4), run(16)
	for _, name := range a.Names() {
		sa, sb, sc := a.Series(name), b.Series(name), c.Series(name)
		for i := range sa.Points {
			if sa.Points[i] != sb.Points[i] || sa.Points[i] != sc.Points[i] {
				t.Fatalf("series %s differs across worker counts at epoch %d", name, i)
			}
		}
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	run := func(seed uint64) float64 {
		cfg := DefaultConfig()
		cfg.Epochs = 20
		cfg.Seed = seed
		eng := buildEngine(t, core.NewRFH(), cfg, false)
		rec, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rec.Series(metrics.SeriesUtilization).Last()
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical utilization trajectory ends")
	}
}

func TestRecorderSeriesComplete(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 10
	eng := buildEngine(t, policy.NewRandom(), cfg, false)
	rec, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	want := []string{
		metrics.SeriesUtilization, metrics.SeriesTotalReplicas, metrics.SeriesAvgReplicas,
		metrics.SeriesReplCost, metrics.SeriesReplCostAvg, metrics.SeriesMigrTimes,
		metrics.SeriesMigrTimesAvg, metrics.SeriesMigrCost, metrics.SeriesMigrCostAvg,
		metrics.SeriesLoadImbalance, metrics.SeriesPathLength, metrics.SeriesUnservedFrac,
		metrics.SeriesAliveServers, metrics.SeriesLostPartitions,
	}
	for _, name := range want {
		s := rec.Series(name)
		if s == nil || len(s.Points) != 10 {
			t.Fatalf("series %s missing or wrong length", name)
		}
	}
}

func TestReplicaCountsNeverBelowOne(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 40
	eng := buildEngine(t, core.NewRFH(), cfg, true)
	for e := 0; e < cfg.Epochs; e++ {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < eng.Cluster().NumPartitions(); p++ {
			if eng.Cluster().ReplicaCount(p) < 1 {
				t.Fatalf("epoch %d: partition %d has no copies", e, p)
			}
			primary := eng.Cluster().Primary(p)
			if primary < 0 || !eng.Cluster().HasReplica(p, primary) {
				t.Fatalf("epoch %d: partition %d primary invalid", e, p)
			}
		}
	}
}

func TestScheduledFailureDropsServers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 20
	eng := buildEngine(t, core.NewRFH(), cfg, false)
	eng.ScheduleFailure(FailureEvent{Epoch: 5, Fail: []cluster.ServerID{0, 1, 2, 3, 4}})
	rec, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	alive := rec.Series(metrics.SeriesAliveServers)
	if alive.Points[4] != 100 {
		t.Fatalf("pre-failure alive = %g", alive.Points[4])
	}
	if alive.Points[5] != 95 {
		t.Fatalf("post-failure alive = %g, want 95", alive.Points[5])
	}
	// No replicas may remain on dead servers.
	for p := 0; p < eng.Cluster().NumPartitions(); p++ {
		for _, s := range eng.Cluster().ReplicaServers(p) {
			if !eng.Cluster().Server(s).Alive() {
				t.Fatalf("replica of %d on dead server %d", p, s)
			}
		}
	}
}

func TestFailureThenRecovery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 20
	eng := buildEngine(t, core.NewRFH(), cfg, false)
	eng.ScheduleFailure(FailureEvent{Epoch: 3, Fail: []cluster.ServerID{7}})
	eng.ScheduleFailure(FailureEvent{Epoch: 10, Recover: []cluster.ServerID{7}})
	rec, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	alive := rec.Series(metrics.SeriesAliveServers)
	if alive.Points[3] != 99 || alive.Points[10] != 100 {
		t.Fatalf("alive trajectory wrong: %g at 3, %g at 10", alive.Points[3], alive.Points[10])
	}
}

func TestMassFailureRecoversReplicas(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 80
	eng := buildEngine(t, core.NewRFH(), cfg, false)
	var victims []cluster.ServerID
	for i := 0; i < 30; i++ {
		victims = append(victims, cluster.ServerID(i*3))
	}
	eng.ScheduleFailure(FailureEvent{Epoch: 40, Fail: victims})
	rec, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	reps := rec.Series(metrics.SeriesTotalReplicas).Points
	pre := reps[39]
	at := reps[40]
	post := reps[79]
	if at >= pre {
		t.Fatalf("no replica drop at failure: pre=%g at=%g", pre, at)
	}
	if post < 0.85*pre {
		t.Fatalf("replicas did not recover: pre=%g post=%g", pre, post)
	}
}

func TestAllPartitionsServedEventually(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 60
	eng := buildEngine(t, core.NewRFH(), cfg, false)
	rec, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	unserved := rec.Series(metrics.SeriesUnservedFrac)
	if got := unserved.Points[len(unserved.Points)-1]; got > 0.02 {
		t.Fatalf("steady-state unserved fraction = %g", got)
	}
}

func TestServingModelsBothRun(t *testing.T) {
	for _, m := range []ServingModel{ServePath, ServeNearest} {
		cfg := DefaultConfig()
		cfg.Epochs = 15
		cfg.Serving = m
		eng := buildEngine(t, core.NewRFH(), cfg, false)
		rec, err := eng.Run()
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if rec.Series(metrics.SeriesUtilization).Last() <= 0 {
			t.Fatalf("%v: zero utilization", m)
		}
	}
}

func TestCumulativeSeriesMonotone(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 50
	eng := buildEngine(t, policy.NewRequestOriented(0.2), cfg, true)
	rec, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{metrics.SeriesReplCost, metrics.SeriesMigrCost, metrics.SeriesMigrTimes} {
		pts := rec.Series(name).Points
		for i := 1; i < len(pts); i++ {
			if pts[i] < pts[i-1]-1e-9 {
				t.Fatalf("cumulative series %s decreased at epoch %d", name, i)
			}
		}
	}
}

func TestUtilizationWithinUnitInterval(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 30
	eng := buildEngine(t, policy.NewRandom(), cfg, true)
	rec, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range rec.Series(metrics.SeriesUtilization).Points {
		if u < 0 || u > 1 || math.IsNaN(u) {
			t.Fatalf("utilization %g outside [0,1]", u)
		}
	}
}

func TestStorageAccountingConsistentAfterRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 40
	eng := buildEngine(t, core.NewRFH(), cfg, true)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	cl := eng.Cluster()
	var stored int64
	for i := 0; i < cl.NumServers(); i++ {
		stored += cl.Server(cluster.ServerID(i)).StorageUsed()
	}
	if want := int64(cl.TotalReplicas()) * cl.Spec().PartitionSize; stored != want {
		t.Fatalf("storage ledger %d != replicas × size %d", stored, want)
	}
}

func TestEpochCounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 7
	eng := buildEngine(t, policy.NewRandom(), cfg, false)
	if eng.Epoch() != 0 {
		t.Fatal("fresh engine epoch != 0")
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if eng.Epoch() != 7 {
		t.Fatalf("epoch = %d after run", eng.Epoch())
	}
	if eng.Recorder().Epochs() != 7 {
		t.Fatalf("recorded %d epochs", eng.Recorder().Epochs())
	}
	if eng.Policy().Name() != "random" {
		t.Fatal("policy accessor wrong")
	}
}

func TestJoinEventGrowsCluster(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 20
	eng := buildEngine(t, core.NewRFH(), cfg, false)
	eng.ScheduleFailure(FailureEvent{Epoch: 5, Join: []topology.DCID{0, 3, 3}})
	rec, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	alive := rec.Series(metrics.SeriesAliveServers)
	if alive.Points[4] != 100 || alive.Points[5] != 103 {
		t.Fatalf("alive trajectory: %g -> %g", alive.Points[4], alive.Points[5])
	}
	if eng.Cluster().NumServers() != 103 {
		t.Fatalf("cluster has %d servers", eng.Cluster().NumServers())
	}
	// Join into an unknown DC is skipped, not fatal.
	eng2 := buildEngine(t, core.NewRFH(), cfg, false)
	eng2.ScheduleFailure(FailureEvent{Epoch: 1, Join: []topology.DCID{99}})
	if _, err := eng2.Run(); err != nil {
		t.Fatalf("unknown-DC join crashed the run: %v", err)
	}
}

func TestSLASeriesRecorded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 30
	eng := buildEngine(t, core.NewRFH(), cfg, false)
	rec, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	sla := rec.Series(metrics.SeriesSLAFrac)
	if sla == nil || len(sla.Points) != 30 {
		t.Fatal("SLA series missing")
	}
	for _, v := range sla.Points {
		if v < 0 || v > 1 {
			t.Fatalf("SLA fraction %g outside [0,1]", v)
		}
	}
	// After convergence the overwhelming majority of lookups finish
	// within 300 ms (paths are short).
	if got := sla.Last(); got < 0.95 {
		t.Fatalf("steady SLA fraction = %g", got)
	}
	if rec.Series(metrics.SeriesLatencyMean).Last() <= 0 {
		t.Fatal("mean latency not positive")
	}
}

func TestSLACustomThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 10
	// An SLA bound below the service time: nothing can meet it.
	cfg.Latency = metrics.LatencyModel{HopLatencyMs: 50, ServiceMs: 10, SLAThresholdMs: 5}
	eng := buildEngine(t, core.NewRFH(), cfg, false)
	rec, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Series(metrics.SeriesSLAFrac).Last(); got != 0 {
		t.Fatalf("impossible SLA met at fraction %g", got)
	}
}

func TestSLAConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Latency = metrics.LatencyModel{HopLatencyMs: -1, ServiceMs: 1, SLAThresholdMs: 300}
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative hop latency accepted")
	}
}

func TestChurnFailsAndRecoversServers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 60
	cfg.ChurnFailProb = 0.02
	cfg.ChurnMTTR = 10
	eng := buildEngine(t, core.NewRFH(), cfg, false)
	rec, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	alive := rec.Series(metrics.SeriesAliveServers).Points
	sawDown, sawRecovery := false, false
	for i := 1; i < len(alive); i++ {
		if alive[i] < 100 {
			sawDown = true
		}
		if alive[i] > alive[i-1] {
			sawRecovery = true
		}
	}
	if !sawDown || !sawRecovery {
		t.Fatalf("churn trajectory: down=%v recovery=%v", sawDown, sawRecovery)
	}
	// RFH's availability floor keeps every partition alive through mild
	// churn.
	if got := rec.Series(metrics.SeriesUnservedFrac).Last(); got > 0.2 {
		t.Fatalf("steady unserved under churn = %g", got)
	}
}

func TestChurnDeterministic(t *testing.T) {
	run := func() float64 {
		cfg := DefaultConfig()
		cfg.Epochs = 30
		cfg.ChurnFailProb = 0.03
		eng := buildEngine(t, core.NewRFH(), cfg, false)
		rec, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, v := range rec.Series(metrics.SeriesAliveServers).Points {
			sum += v
		}
		return sum
	}
	if run() != run() {
		t.Fatal("churn not deterministic")
	}
}

func TestChurnConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChurnFailProb = 1
	if err := cfg.Validate(); err == nil {
		t.Fatal("churn prob 1 accepted")
	}
	cfg = DefaultConfig()
	cfg.ChurnMTTR = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative MTTR accepted")
	}
}

func TestSnapshotConsistency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 30
	eng := buildEngine(t, core.NewRFH(), cfg, false)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	if snap.Epoch != 30 {
		t.Fatalf("snapshot epoch = %d", snap.Epoch)
	}
	totalFromDCs, totalFromParts, primaries, alive := 0, 0, 0, 0
	for _, d := range snap.PerDC {
		totalFromDCs += d.Replicas
		primaries += d.Primaries
		alive += d.AliveServers
	}
	for _, c := range snap.PartitionCopies {
		totalFromParts += c
	}
	if totalFromDCs != totalFromParts || totalFromDCs != eng.Cluster().TotalReplicas() {
		t.Fatalf("replica accounting: perDC=%d perPartition=%d cluster=%d",
			totalFromDCs, totalFromParts, eng.Cluster().TotalReplicas())
	}
	if primaries != eng.Cluster().NumPartitions() {
		t.Fatalf("primaries = %d, want one per partition", primaries)
	}
	if alive != 100 {
		t.Fatalf("alive = %d", alive)
	}
}

func TestSnapshotHubConcentration(t *testing.T) {
	// The central thesis made visible: under RFH the hub datacenters D
	// and F host more replicas than the median datacenter.
	cfg := DefaultConfig()
	cfg.Epochs = 60
	eng := buildEngine(t, core.NewRFH(), cfg, false)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	counts := map[string]int{}
	total := 0
	for _, d := range snap.PerDC {
		counts[d.Name] = d.Replicas
		total += d.Replicas
	}
	mean := total / len(snap.PerDC)
	if counts["D"] <= mean && counts["F"] <= mean {
		t.Fatalf("hub DCs not above the mean: D=%d F=%d mean=%d", counts["D"], counts["F"], mean)
	}
}

func TestActionSeriesMatchCumulatives(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 50
	eng := buildEngine(t, policy.NewRequestOriented(0.2), cfg, true)
	rec, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	sumRepl, sumMigr := 0.0, 0.0
	for _, v := range rec.Series(metrics.SeriesReplActions).Points {
		sumRepl += v
	}
	for _, v := range rec.Series(metrics.SeriesMigrActions).Points {
		sumMigr += v
	}
	if sumMigr != rec.Series(metrics.SeriesMigrTimes).Last() {
		t.Fatalf("per-epoch migrations sum %g != cumulative %g",
			sumMigr, rec.Series(metrics.SeriesMigrTimes).Last())
	}
	if sumRepl == 0 {
		t.Fatal("no replication actions recorded")
	}
}

func TestSuicideActionsRecorded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 120
	eng := buildEngine(t, core.NewRFH(), cfg, true)
	rec, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, v := range rec.Series(metrics.SeriesSuicideActions).Points {
		total += v
	}
	if total == 0 {
		t.Fatal("RFH under flash crowd never suicided a replica")
	}
}
