package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/stats"
)

func TestSmokeFlashCrowd(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, pol := range []policy.Policy{
		core.NewRFH(), policy.NewRandom(), policy.NewOwnerOriented(), policy.NewRequestOriented(0.2),
	} {
		rec := runPolicy(t, pol, true, 400)
		u := rec.Series(metrics.SeriesUtilization)
		s1 := stats.Mean(u.Window(60, 100))   // late stage 1
		s2a := stats.Mean(u.Window(101, 115)) // right after shift
		s2 := stats.Mean(u.Window(160, 200))  // late stage 2
		s3 := stats.Mean(u.Window(260, 300))
		t.Logf("%-8s util s1=%.2f postshift=%.2f s2=%.2f s3=%.2f | reps=%.0f migr=%.0f migrCost=%.1f path(s1)=%.2f path(end)=%.2f",
			pol.Name(), s1, s2a, s2, s3,
			rec.Series(metrics.SeriesTotalReplicas).Last(),
			rec.Series(metrics.SeriesMigrTimes).Last(),
			rec.Series(metrics.SeriesMigrCost).Last(),
			stats.Mean(rec.Series(metrics.SeriesPathLength).Window(60, 100)),
			stats.Mean(rec.Series(metrics.SeriesPathLength).Window(360, 400)))
	}
}
