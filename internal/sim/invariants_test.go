package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

// TestChaosInvariants runs randomized scenarios — random policy,
// workload, serving model, churn, scheduled failures and joins — and
// asserts the invariants that must hold regardless of configuration:
//
//  1. every partition keeps at least one copy with a valid primary;
//  2. the storage ledger equals replicas × partition size;
//  3. no replica lives on a dead server;
//  4. cumulative cost/migration series never decrease;
//  5. utilization and SLA stay within [0, 1];
//  6. all series have exactly one point per epoch.
func TestChaosInvariants(t *testing.T) {
	scenario := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		w := topology.PaperWorld()
		rt, err := network.NewRouter(w)
		if err != nil {
			return false
		}
		spec := cluster.DefaultSpec()
		spec.Partitions = 8 + rng.Intn(16)
		spec.Seed = seed
		cl, err := cluster.New(w, spec)
		if err != nil {
			return false
		}

		wcfg := workload.Config{
			Partitions: spec.Partitions,
			DCs:        w.NumDCs(),
			Lambda:     50 + float64(rng.Intn(400)),
			Seed:       seed ^ 0xF00D,
		}
		var gen workload.Generator
		switch rng.Intn(4) {
		case 0:
			gen, err = workload.NewUniform(wcfg)
		case 1:
			gen, err = workload.NewPaperFlashCrowd(wcfg, w, 40)
		case 2:
			gen, err = workload.NewZipfPartitions(wcfg, 0.5+rng.Float64())
		default:
			gen, err = workload.NewDrift(wcfg, 5+rng.Intn(10), 0.7)
		}
		if err != nil {
			return false
		}

		var pol policy.Policy
		switch rng.Intn(5) {
		case 0:
			pol = core.NewRFH()
		case 1:
			pol = policy.NewRandom()
		case 2:
			pol = policy.NewOwnerOriented()
		case 3:
			pol = policy.NewRequestOriented(0.2)
		default:
			pol = policy.NewEAD(5 + rng.Intn(20))
		}

		cfg := DefaultConfig()
		cfg.Epochs = 40
		cfg.Seed = seed
		cfg.Serving = ServingModel(rng.Intn(2))
		if rng.Bool(0.5) {
			cfg.ChurnFailProb = 0.02 * rng.Float64()
			cfg.ChurnMTTR = 5 + rng.Intn(10)
		}
		if rng.Bool(0.3) {
			cfg.WriteLambda = float64(5 + rng.Intn(30))
		}
		eng, err := New(cl, rt, gen, pol, cfg)
		if err != nil {
			return false
		}
		defer eng.Close()
		if rng.Bool(0.5) {
			var victims []cluster.ServerID
			for len(victims) < 10+rng.Intn(20) {
				victims = append(victims, cluster.ServerID(rng.Intn(cl.NumServers())))
			}
			eng.ScheduleFailure(FailureEvent{Epoch: 10 + rng.Intn(20), Fail: victims})
		}
		if rng.Bool(0.3) {
			eng.ScheduleFailure(FailureEvent{
				Epoch: 5 + rng.Intn(30),
				Join:  []topology.DCID{topology.DCID(rng.Intn(w.NumDCs()))},
			})
		}

		rec, err := eng.Run()
		if err != nil {
			t.Logf("seed %d: run failed: %v", seed, err)
			return false
		}

		// (1) and (3): placement sanity.
		for p := 0; p < cl.NumPartitions(); p++ {
			if cl.ReplicaCount(p) < 1 {
				t.Logf("seed %d: partition %d empty", seed, p)
				return false
			}
			primary := cl.Primary(p)
			if primary < 0 || !cl.HasReplica(p, primary) || !cl.Server(primary).Alive() {
				t.Logf("seed %d: partition %d primary invalid", seed, p)
				return false
			}
			for _, s := range cl.ReplicaServers(p) {
				if !cl.Server(s).Alive() {
					t.Logf("seed %d: replica on dead server %d", seed, s)
					return false
				}
			}
		}
		// (2): storage ledger.
		var stored int64
		for i := 0; i < cl.NumServers(); i++ {
			stored += cl.Server(cluster.ServerID(i)).StorageUsed()
		}
		if stored != int64(cl.TotalReplicas())*spec.PartitionSize {
			t.Logf("seed %d: storage ledger mismatch", seed)
			return false
		}
		// (4): monotone cumulative series.
		for _, name := range []string{metrics.SeriesReplCost, metrics.SeriesMigrCost, metrics.SeriesMigrTimes} {
			pts := rec.Series(name).Points
			for i := 1; i < len(pts); i++ {
				if pts[i] < pts[i-1]-1e-9 {
					t.Logf("seed %d: %s decreased", seed, name)
					return false
				}
			}
		}
		// (5): bounded fractions.
		for _, name := range []string{metrics.SeriesUtilization, metrics.SeriesSLAFrac, metrics.SeriesUnservedFrac} {
			for _, v := range rec.Series(name).Points {
				if v < 0 || v > 1 {
					t.Logf("seed %d: %s = %g out of range", seed, name, v)
					return false
				}
			}
		}
		// (6): rectangular recorder.
		if err := rec.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(scenario, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
