package sim

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/topology"
	"repro/internal/workload"
)

// runPolicy is a test helper: builds the paper world, runs pol over the
// given workload for epochs, returns the recorder.
func runPolicy(t testing.TB, pol policy.Policy, flash bool, epochs int) *metrics.Recorder {
	t.Helper()
	w := topology.PaperWorld()
	rt, err := network.NewRouter(w)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(w, cluster.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	wcfg := workload.Config{Partitions: cl.NumPartitions(), DCs: w.NumDCs(), Lambda: 300, Seed: 42}
	var gen workload.Generator
	if flash {
		gen, err = workload.NewPaperFlashCrowd(wcfg, w, epochs)
	} else {
		gen, err = workload.NewUniform(wcfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Epochs = epochs
	eng, err := New(cl, rt, gen, pol, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rec, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestSmokeAllPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test is slow")
	}
	for _, pol := range []policy.Policy{
		core.NewRFH(), policy.NewRandom(), policy.NewOwnerOriented(), policy.NewRequestOriented(0.2),
	} {
		rec := runPolicy(t, pol, false, 60)
		util := rec.Series(metrics.SeriesUtilization).Last()
		reps := rec.Series(metrics.SeriesTotalReplicas).Last()
		path := rec.Series(metrics.SeriesPathLength).Last()
		unserved := rec.Series(metrics.SeriesUnservedFrac).Last()
		t.Logf("%-8s util=%.3f replicas=%.0f path=%.2f unserved=%.3f replCost=%.2f migr=%.0f",
			pol.Name(), util, reps, path, unserved,
			rec.Series(metrics.SeriesReplCost).Last(),
			rec.Series(metrics.SeriesMigrTimes).Last())
		if reps < 64 {
			t.Errorf("%s: replicas below partition count", pol.Name())
		}
	}
}
