package sim

import (
	"repro/internal/topology"
)

// DCPlacement summarises one datacenter's share of the replica fleet.
type DCPlacement struct {
	DC           topology.DCID
	Name         string
	AliveServers int
	Replicas     int // copies hosted across all partitions
	Primaries    int // partitions whose primary lives here
}

// Snapshot is a point-in-time view of where the data lives.
type Snapshot struct {
	Epoch           int
	PerDC           []DCPlacement
	PartitionCopies []int // copies per partition
}

// Snapshot captures the current placement. Safe to call between Steps.
func (e *Engine) Snapshot() *Snapshot {
	w := e.cluster.World()
	snap := &Snapshot{
		Epoch:           e.epoch,
		PerDC:           make([]DCPlacement, w.NumDCs()),
		PartitionCopies: make([]int, e.cluster.NumPartitions()),
	}
	for d := 0; d < w.NumDCs(); d++ {
		snap.PerDC[d] = DCPlacement{DC: topology.DCID(d), Name: w.DC(topology.DCID(d)).Name}
		for _, s := range e.cluster.ServersInDC(topology.DCID(d)) {
			if e.cluster.Server(s).Alive() {
				snap.PerDC[d].AliveServers++
			}
		}
	}
	for p := 0; p < e.cluster.NumPartitions(); p++ {
		snap.PartitionCopies[p] = e.cluster.ReplicaCount(p)
		for _, s := range e.cluster.ReplicaServers(p) {
			snap.PerDC[e.cluster.DCOf(s)].Replicas++
		}
		if primary := e.cluster.Primary(p); primary >= 0 {
			snap.PerDC[e.cluster.DCOf(primary)].Primaries++
		}
	}
	return snap
}
