package stats

import "testing"

func BenchmarkPoisson300(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Poisson(300)
	}
}

func BenchmarkPoisson5(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Poisson(5)
	}
}

func BenchmarkStream(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Stream(uint64(i))
	}
}
