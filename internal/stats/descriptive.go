package stats

import "math"

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (divisor n, matching
// the paper's load-imbalance definition in eq. 25), or 0 for fewer than
// one element.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(n)
}

// StdDev returns the population standard deviation of xs. This is
// exactly eq. (25)'s L_b when xs holds per-node workloads.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// EWMA implements the paper's smoothing equations (10) and (11):
//
//	v̄_t = α·v̄_{t−1} + (1−α)·v_t,  0 < α < 1
//
// The zero value is not ready to use; construct with NewEWMA.
type EWMA struct {
	alpha   float64
	value   float64
	started bool
}

// NewEWMA returns a smoother with factor alpha in (0, 1). alpha is the
// weight of history, as in the paper (larger alpha = smoother, slower).
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha >= 1 {
		panic("stats: EWMA alpha must be in (0, 1)")
	}
	return &EWMA{alpha: alpha}
}

// Update folds the observation x into the average and returns the new
// smoothed value. The first observation initialises the average.
func (e *EWMA) Update(x float64) float64 {
	if !e.started {
		e.value = x
		e.started = true
		return x
	}
	e.value = e.alpha*e.value + (1-e.alpha)*x
	return e.value
}

// Value returns the current smoothed value (0 before any update).
func (e *EWMA) Value() float64 { return e.value }

// Started reports whether at least one observation has been folded in.
func (e *EWMA) Started() bool { return e.started }

// Reset clears the smoother back to its initial state.
func (e *EWMA) Reset() {
	e.value = 0
	e.started = false
}

// Smooth applies one step of eq. (10)/(11) functionally: it returns
// alpha*prev + (1-alpha)*cur.
func Smooth(alpha, prev, cur float64) float64 {
	return alpha*prev + (1-alpha)*cur
}

// Welford accumulates mean and variance in a single streaming pass
// (Welford's online algorithm). Useful for long simulations where
// retaining every sample would be wasteful.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }
