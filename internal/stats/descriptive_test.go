package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanBasic(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %g", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %g", got)
	}
}

func TestVarianceBasic(t *testing.T) {
	// Population variance of {2,4,4,4,5,5,7,9} is 4 (classic example).
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Fatalf("Variance = %g, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Fatalf("StdDev = %g, want 2", got)
	}
}

func TestVarianceConstantIsZero(t *testing.T) {
	check := func(vRaw int32, n8 uint8) bool {
		v := float64(vRaw)
		n := int(n8)%20 + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = v
		}
		return Variance(xs) < 1e-9*math.Max(1, v*v)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSumMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Sum(xs) != 9 {
		t.Fatalf("Sum = %g", Sum(xs))
	}
	if Min(xs) != -1 {
		t.Fatalf("Min = %g", Min(xs))
	}
	if Max(xs) != 7 {
		t.Fatalf("Max = %g", Max(xs))
	}
}

func TestMinMaxPanicOnEmpty(t *testing.T) {
	for name, f := range map[string]func([]float64) float64{"Min": Min, "Max": Max} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s(empty) did not panic", name)
				}
			}()
			f(nil)
		}()
	}
}

func TestEWMAFollowsPaperEquation(t *testing.T) {
	// eq. (10): q̄_t = α·q̄_{t−1} + (1−α)·q_t with α = 0.2.
	e := NewEWMA(0.2)
	e.Update(100) // initialises to 100
	got := e.Update(200)
	want := 0.2*100 + 0.8*200
	if !almostEq(got, want, 1e-12) {
		t.Fatalf("EWMA second update = %g, want %g", got, want)
	}
	got = e.Update(50)
	want = 0.2*want + 0.8*50
	if !almostEq(got, want, 1e-12) {
		t.Fatalf("EWMA third update = %g, want %g", got, want)
	}
}

func TestEWMAFirstObservationInitialises(t *testing.T) {
	e := NewEWMA(0.9)
	if e.Started() {
		t.Fatal("fresh EWMA reports started")
	}
	if got := e.Update(42); got != 42 {
		t.Fatalf("first update = %g, want 42", got)
	}
	if !e.Started() {
		t.Fatal("EWMA not started after update")
	}
}

func TestEWMAReset(t *testing.T) {
	e := NewEWMA(0.5)
	e.Update(10)
	e.Reset()
	if e.Started() || e.Value() != 0 {
		t.Fatal("Reset did not clear state")
	}
	if got := e.Update(7); got != 7 {
		t.Fatalf("after reset first update = %g", got)
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	for _, a := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewEWMA(%g) did not panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.2)
	for i := 0; i < 100; i++ {
		e.Update(5)
	}
	if !almostEq(e.Value(), 5, 1e-9) {
		t.Fatalf("EWMA of constant 5 = %g", e.Value())
	}
}

func TestSmoothMatchesEWMA(t *testing.T) {
	check := func(prevRaw, curRaw int16) bool {
		prev, cur := float64(prevRaw), float64(curRaw)
		e := NewEWMA(0.3)
		e.Update(prev)
		return almostEq(e.Update(cur), Smooth(0.3, prev, cur), 1e-9)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	check := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var w Welford
		for i, v := range raw {
			xs[i] = float64(v)
			w.Add(float64(v))
		}
		return almostEq(w.Mean(), Mean(xs), 1e-6*(1+math.Abs(Mean(xs)))) &&
			almostEq(w.Variance(), Variance(xs), 1e-4*(1+Variance(xs)))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoadImbalanceIdenticalWorkloadsZero(t *testing.T) {
	// eq. (25): equal per-node workload ⇒ L_b = 0.
	xs := []float64{10, 10, 10, 10}
	if got := StdDev(xs); got != 0 {
		t.Fatalf("L_b of balanced load = %g", got)
	}
}
