package stats

import "math"

// Poisson draws a Poisson-distributed variate with mean lambda.
// For small lambda it uses Knuth's product method; for large lambda it
// switches to the PTRS transformed-rejection sampler (Hörmann 1993),
// which is exact and O(1) in expectation.
func (r *RNG) Poisson(lambda float64) int {
	switch {
	case lambda <= 0:
		return 0
	case lambda < 30:
		return r.poissonKnuth(lambda)
	default:
		return r.poissonPTRS(lambda)
	}
}

func (r *RNG) poissonKnuth(lambda float64) int {
	limit := math.Exp(-lambda)
	p := 1.0
	k := 0
	for {
		p *= r.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// poissonPTRS implements Hörmann's PTRS algorithm for lambda >= 10.
func (r *RNG) poissonPTRS(lambda float64) int {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logLambda := math.Log(lambda)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logLambda-lambda-logGamma(k+1) {
			return int(k)
		}
	}
}

// logGamma is a thin wrapper so the sampler reads like the reference
// pseudo-code.
func logGamma(x float64) float64 {
	lg, _ := math.Lgamma(x)
	return lg
}

// Zipf samples integers in [0, n) with probability proportional to
// 1/(i+1)^s using an inverse-CDF over a precomputed table. Build one
// with NewZipf and draw with Next.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf constructs a Zipf sampler over n items with exponent s > 0.
// s = 0 degenerates to the uniform distribution.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: NewZipf with n <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Next returns the next Zipf-distributed index in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Exponential draws an exponentially distributed variate with rate
// lambda (mean 1/lambda).
func (r *RNG) Exponential(lambda float64) float64 {
	if lambda <= 0 {
		panic("stats: Exponential with lambda <= 0")
	}
	return -math.Log(1-r.Float64()) / lambda
}

// Binomial draws a Binomial(n, p) variate by direct simulation for
// small n and normal approximation with continuity correction for large
// n·p·(1−p); the simulator only needs modest accuracy here (failure
// injection counts).
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	mu := float64(n) * p
	sigma := math.Sqrt(mu * (1 - p))
	k := int(math.Round(mu + sigma*r.NormFloat64()))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}
