package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPoissonMoments(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 10, 30, 100, 300, 1000} {
		r := NewRNG(uint64(lambda*10) + 1)
		var w Welford
		n := 50000
		for i := 0; i < n; i++ {
			w.Add(float64(r.Poisson(lambda)))
		}
		// Mean and variance of Poisson are both lambda.
		tol := 4 * math.Sqrt(lambda/float64(n)) * 2 // ~4 sigma + slack
		if math.Abs(w.Mean()-lambda) > tol+0.05*lambda {
			t.Errorf("lambda=%g: mean=%g", lambda, w.Mean())
		}
		if math.Abs(w.Variance()-lambda) > 0.1*lambda+1 {
			t.Errorf("lambda=%g: variance=%g", lambda, w.Variance())
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	check := func(seed uint64, l uint8) bool {
		r := NewRNG(seed)
		lambda := float64(l) // 0..255 crosses both sampler regimes
		for i := 0; i < 100; i++ {
			if r.Poisson(lambda) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonZeroLambda(t *testing.T) {
	r := NewRNG(1)
	if got := r.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d", got)
	}
	if got := r.Poisson(-5); got != 0 {
		t.Fatalf("Poisson(-5) = %d", got)
	}
}

func TestPoissonDeterministic(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Poisson(300) != b.Poisson(300) {
			t.Fatal("Poisson not deterministic for equal seeds")
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(5)
	z := NewZipf(r, 10, 1.2)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must dominate rank 9 heavily under s=1.2.
	if counts[0] <= counts[9]*5 {
		t.Fatalf("zipf skew too weak: first=%d last=%d", counts[0], counts[9])
	}
	// Monotone non-increasing up to sampling noise: check a few pairs.
	if counts[0] < counts[3] || counts[1] < counts[5] {
		t.Fatalf("zipf counts not decreasing: %v", counts)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := NewRNG(6)
	z := NewZipf(r, 8, 0)
	counts := make([]int, 8)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/8)/(n/8) > 0.05 {
			t.Fatalf("s=0 bucket %d count %d not uniform", i, c)
		}
	}
}

func TestZipfRange(t *testing.T) {
	check := func(seed uint64, n8 uint8) bool {
		n := int(n8)%50 + 1
		z := NewZipf(NewRNG(seed), n, 1.0)
		for i := 0; i < 50; i++ {
			v := z.Next()
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(_, 0, 1) did not panic")
		}
	}()
	NewZipf(NewRNG(1), 0, 1)
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(8)
	var w Welford
	for i := 0; i < 100000; i++ {
		w.Add(r.Exponential(2))
	}
	if math.Abs(w.Mean()-0.5) > 0.01 {
		t.Fatalf("Exponential(2) mean = %g, want ~0.5", w.Mean())
	}
}

func TestExponentialPositive(t *testing.T) {
	r := NewRNG(12)
	for i := 0; i < 1000; i++ {
		if r.Exponential(1) < 0 {
			t.Fatal("negative exponential variate")
		}
	}
}

func TestBinomialBounds(t *testing.T) {
	check := func(seed uint64, n16 uint16, pRaw uint8) bool {
		r := NewRNG(seed)
		n := int(n16 % 500)
		p := float64(pRaw) / 255
		k := r.Binomial(n, p)
		return k >= 0 && k <= n
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialMean(t *testing.T) {
	r := NewRNG(14)
	var w Welford
	for i := 0; i < 20000; i++ {
		w.Add(float64(r.Binomial(100, 0.1)))
	}
	if math.Abs(w.Mean()-10) > 0.3 {
		t.Fatalf("Binomial(100, 0.1) mean = %g, want ~10", w.Mean())
	}
}

func TestBinomialEdges(t *testing.T) {
	r := NewRNG(15)
	if r.Binomial(0, 0.5) != 0 {
		t.Fatal("Binomial(0, p) != 0")
	}
	if r.Binomial(10, 0) != 0 {
		t.Fatal("Binomial(n, 0) != 0")
	}
	if r.Binomial(10, 1) != 10 {
		t.Fatal("Binomial(n, 1) != n")
	}
}
