// Package stats provides the deterministic random-number and statistics
// substrate used throughout the RFH simulator: a seedable splitmix64 RNG
// with independent named streams, Poisson and Zipf samplers for workload
// generation, exponentially weighted moving averages for the paper's
// smoothing equations (10)–(11), and the descriptive statistics behind
// the load-imbalance metric (eqs. 24–26).
//
// Everything in this package is deterministic for a fixed seed so that
// simulation runs are exactly reproducible regardless of scheduling.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator based on
// splitmix64. It is NOT safe for concurrent use; derive one stream per
// goroutine with Split or Stream instead of sharing.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two RNGs with the same
// seed produce identical sequences.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection-free bound is overkill here; a
	// simple modulo over 64 bits keeps bias below 2^-52 for simulator n.
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate using the polar
// Box–Muller method. Only one of the pair is used to keep the stream
// easy to reason about.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Split derives a statistically independent child generator. The parent
// stream advances by one draw.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0xD1B54A32D192ED03}
}

// Stream derives a deterministic, independent generator identified by id
// without perturbing the parent state. Calling Stream with the same id
// always yields the same child sequence; distinct ids yield uncorrelated
// sequences. Use it to give each (partition, epoch) pair its own stream
// so parallel serving stays deterministic.
func (r *RNG) Stream(id uint64) *RNG {
	z := r.state + (id+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return &RNG{state: z ^ (z >> 31)}
}

// Perm returns a random permutation of [0, n) using Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
