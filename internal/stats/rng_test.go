package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %g, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(13)
	count := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			count++
		}
	}
	p := float64(count) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %g", p)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(17)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.NormFloat64())
	}
	if math.Abs(w.Mean()) > 0.02 {
		t.Fatalf("normal mean = %g, want ~0", w.Mean())
	}
	if math.Abs(w.StdDev()-1) > 0.02 {
		t.Fatalf("normal stddev = %g, want ~1", w.StdDev())
	}
}

func TestStreamIndependentOfParentState(t *testing.T) {
	r := NewRNG(23)
	s1 := r.Stream(5)
	// Drawing from parent must not change what Stream(5) yields.
	r2 := NewRNG(23)
	r2.Uint64() // advance a copy; Stream must not care because it reads state only
	_ = r2
	s2 := NewRNG(23).Stream(5)
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s2.Uint64() {
			t.Fatal("Stream(5) not reproducible")
		}
	}
}

func TestStreamDistinctIDs(t *testing.T) {
	r := NewRNG(29)
	a := r.Stream(1)
	b := r.Stream(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams 1 and 2 produced %d identical draws", same)
	}
}

func TestSplitDiverges(t *testing.T) {
	r := NewRNG(31)
	child := r.Split()
	if r.Uint64() == child.Uint64() {
		t.Fatal("split child mirrors parent")
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + int(seed%50)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRNG(37)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(41)
	const buckets, n = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Fatalf("bucket %d count %d deviates >5%% from %g", i, c, want)
		}
	}
}
