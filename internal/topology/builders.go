package topology

import "fmt"

// PaperWorld builds the 10-datacenter world of the paper's Fig. 1 and
// §III-A: three datacenters in the USA (A, B, C), two in Canada (D, E),
// two in Switzerland (F, G) and three in China/Japan (H, I, J). Link
// weights are chosen so that shortest paths from the Asian requesters
// (H, I, J) to the American partition holders funnel through D and F,
// making those two the natural "traffic hubs" of the paper's narrative.
//
// Shortest paths in this world (verified by tests):
//
//	I → A:  I-D-A        (hub D)
//	H → A:  H-F-D-A      (hubs F, D)
//	J → A:  J-F-D-A      (hubs F, D)
func PaperWorld() *World {
	dcs := []Datacenter{
		{Name: "A", Continent: "NA", Country: "USA", X: 1.0, Y: 2.0},
		{Name: "B", Continent: "NA", Country: "USA", X: 2.0, Y: 1.0},
		{Name: "C", Continent: "NA", Country: "USA", X: 3.0, Y: 2.5},
		{Name: "D", Continent: "NA", Country: "CAN", X: 2.0, Y: 4.0},
		{Name: "E", Continent: "NA", Country: "CAN", X: 4.0, Y: 4.5},
		{Name: "F", Continent: "EU", Country: "CHE", X: 8.0, Y: 3.0},
		{Name: "G", Continent: "EU", Country: "CHE", X: 8.5, Y: 4.0},
		{Name: "H", Continent: "AS", Country: "CHN", X: 13.0, Y: 3.0},
		{Name: "I", Continent: "AS", Country: "JPN", X: 15.0, Y: 2.5},
		{Name: "J", Continent: "AS", Country: "CHN", X: 13.5, Y: 1.5},
	}
	w := NewWorld(dcs)
	link := func(a, b string, wt float64) {
		da, _ := w.DCByName(a)
		db, _ := w.DCByName(b)
		if err := w.AddLink(da.ID, db.ID, wt); err != nil {
			panic(fmt.Sprintf("topology: PaperWorld link %s-%s: %v", a, b, err))
		}
	}
	// Intra-US mesh.
	link("A", "B", 1.5)
	link("B", "C", 2.0)
	link("A", "C", 2.2)
	// Canada and its US attachments: D is the continental gateway.
	link("A", "D", 2.2)
	link("B", "D", 3.0)
	link("C", "E", 2.3)
	link("D", "E", 2.1)
	// Europe.
	link("F", "G", 1.2)
	// Asia.
	link("H", "I", 2.2)
	link("H", "J", 1.6)
	link("I", "J", 3.5)
	// Intercontinental trunks. Weights tuned so Asia→USA shortest paths
	// traverse F (Europe gateway) and/or D (Canada gateway).
	link("D", "F", 6.1) // transatlantic
	link("G", "E", 7.2) // secondary transatlantic (more expensive)
	link("H", "F", 4.6) // China → Europe
	link("J", "F", 6.0) // China → Europe
	link("I", "D", 8.8) // transpacific Japan → Canada
	if err := w.Validate(); err != nil {
		panic("topology: PaperWorld invalid: " + err.Error())
	}
	return w
}

// RingWorld builds n datacenters arranged in a cycle with unit-weight
// links; useful for protocol tests where the hub structure should be
// symmetric.
func RingWorld(n int) *World {
	if n < 3 {
		panic("topology: RingWorld needs n >= 3")
	}
	dcs := make([]Datacenter, n)
	for i := range dcs {
		dcs[i] = Datacenter{
			Name:      fmt.Sprintf("R%02d", i),
			Continent: "X",
			Country:   fmt.Sprintf("C%02d", i),
			X:         float64(i),
			Y:         0,
		}
	}
	w := NewWorld(dcs)
	for i := 0; i < n; i++ {
		if err := w.AddLink(DCID(i), DCID((i+1)%n), 1); err != nil {
			panic("topology: RingWorld: " + err.Error())
		}
	}
	return w
}

// GridWorld builds rows×cols datacenters on a grid with links between
// horizontal and vertical neighbours (weight 1). Grids produce many
// equal-cost paths, exercising deterministic tie-breaking in routing.
func GridWorld(rows, cols int) *World {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		panic("topology: GridWorld needs at least 2 cells")
	}
	dcs := make([]Datacenter, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			dcs = append(dcs, Datacenter{
				Name:      fmt.Sprintf("G%d.%d", r, c),
				Continent: "X",
				Country:   fmt.Sprintf("K%d", r),
				X:         float64(c),
				Y:         float64(r),
			})
		}
	}
	w := NewWorld(dcs)
	id := func(r, c int) DCID { return DCID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := w.AddLink(id(r, c), id(r, c+1), 1); err != nil {
					panic("topology: GridWorld: " + err.Error())
				}
			}
			if r+1 < rows {
				if err := w.AddLink(id(r, c), id(r+1, c), 1); err != nil {
					panic("topology: GridWorld: " + err.Error())
				}
			}
		}
	}
	return w
}
