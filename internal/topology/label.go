// Package topology models the geographic organisation of a globally
// distributed cloud storage system as described in §II-A of the RFH
// paper: every physical server carries a label of the form
// "continent-country-datacenter-room-rack-server", availability between
// two servers is graded on levels 1–5 by how much of that hierarchy they
// share, and datacenters form a weighted graph whose link structure
// creates the "traffic hub" conjunction nodes the RFH algorithm exploits.
package topology

import (
	"fmt"
	"strings"
)

// Label identifies the physical placement of a server:
// continent-country-datacenter-room-rack-server (§II-A, e.g.
// "NA-USA-GA1-C01-R02-S5").
type Label struct {
	Continent  string
	Country    string
	Datacenter string
	Room       string
	Rack       string
	Server     string
}

// String renders the canonical dash-separated form used by the paper.
func (l Label) String() string {
	return strings.Join([]string{l.Continent, l.Country, l.Datacenter, l.Room, l.Rack, l.Server}, "-")
}

// ParseLabel parses the canonical dash-separated form. All six fields
// must be present and non-empty.
func ParseLabel(s string) (Label, error) {
	parts := strings.Split(s, "-")
	if len(parts) != 6 {
		return Label{}, fmt.Errorf("topology: label %q must have 6 dash-separated fields, got %d", s, len(parts))
	}
	for i, p := range parts {
		if p == "" {
			return Label{}, fmt.Errorf("topology: label %q has empty field %d", s, i)
		}
	}
	return Label{
		Continent:  parts[0],
		Country:    parts[1],
		Datacenter: parts[2],
		Room:       parts[3],
		Rack:       parts[4],
		Server:     parts[5],
	}, nil
}

// Level grades the availability gained by placing two replicas on a pair
// of servers, per §II-A: Level 5 (different datacenters) is the highest,
// Level 1 (same server) the lowest.
type Level int

// Availability levels from §II-A of the paper.
const (
	LevelSameServer      Level = 1 // both replicas on one server: no protection
	LevelSameRack        Level = 2 // same rack, different servers
	LevelSameRoom        Level = 3 // same room, different racks
	LevelSameDatacenter  Level = 4 // same datacenter, different rooms
	LevelCrossDatacenter Level = 5 // different datacenters: highest
)

// String implements fmt.Stringer for diagnostics.
func (lv Level) String() string {
	switch lv {
	case LevelSameServer:
		return "L1(same-server)"
	case LevelSameRack:
		return "L2(same-rack)"
	case LevelSameRoom:
		return "L3(same-room)"
	case LevelSameDatacenter:
		return "L4(same-datacenter)"
	case LevelCrossDatacenter:
		return "L5(cross-datacenter)"
	default:
		return fmt.Sprintf("Level(%d)", int(lv))
	}
}

// AvailabilityLevel computes the §II-A availability level for two
// server labels. The continent/country fields do not refine the level
// beyond "different datacenter" in the paper, so any datacenter mismatch
// yields Level 5.
func AvailabilityLevel(a, b Label) Level {
	if a.Datacenter != b.Datacenter || a.Country != b.Country || a.Continent != b.Continent {
		return LevelCrossDatacenter
	}
	if a.Room != b.Room {
		return LevelSameDatacenter
	}
	if a.Rack != b.Rack {
		return LevelSameRoom
	}
	if a.Server != b.Server {
		return LevelSameRack
	}
	return LevelSameServer
}

// SameDatacenter reports whether both labels name the same datacenter.
func SameDatacenter(a, b Label) bool {
	return a.Continent == b.Continent && a.Country == b.Country && a.Datacenter == b.Datacenter
}
