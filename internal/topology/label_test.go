package topology

import (
	"testing"
	"testing/quick"
)

func TestLabelRoundTrip(t *testing.T) {
	l := Label{"NA", "USA", "GA1", "C01", "R02", "S5"}
	s := l.String()
	if s != "NA-USA-GA1-C01-R02-S5" {
		t.Fatalf("String() = %q", s)
	}
	got, err := ParseLabel(s)
	if err != nil {
		t.Fatal(err)
	}
	if got != l {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestParseLabelErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"NA-USA-GA1",
		"NA-USA-GA1-C01-R02-S5-EXTRA",
		"NA--GA1-C01-R02-S5",
	} {
		if _, err := ParseLabel(bad); err == nil {
			t.Errorf("ParseLabel(%q) succeeded, want error", bad)
		}
	}
}

func TestAvailabilityLevels(t *testing.T) {
	base := Label{"NA", "USA", "DC1", "RM1", "RK1", "S1"}
	cases := []struct {
		name string
		b    Label
		want Level
	}{
		{"same server", base, LevelSameServer},
		{"same rack", Label{"NA", "USA", "DC1", "RM1", "RK1", "S2"}, LevelSameRack},
		{"same room", Label{"NA", "USA", "DC1", "RM1", "RK2", "S1"}, LevelSameRoom},
		{"same dc", Label{"NA", "USA", "DC1", "RM2", "RK1", "S1"}, LevelSameDatacenter},
		{"other dc", Label{"NA", "USA", "DC2", "RM1", "RK1", "S1"}, LevelCrossDatacenter},
		{"other country same dc name", Label{"NA", "CAN", "DC1", "RM1", "RK1", "S1"}, LevelCrossDatacenter},
		{"other continent", Label{"EU", "USA", "DC1", "RM1", "RK1", "S1"}, LevelCrossDatacenter},
	}
	for _, c := range cases {
		if got := AvailabilityLevel(base, c.b); got != c.want {
			t.Errorf("%s: level = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestAvailabilityLevelSymmetric(t *testing.T) {
	check := func(a1, a2, b1, b2 uint8) bool {
		mk := func(dc, rm, rk, sv uint8) Label {
			return Label{"NA", "USA",
				string(rune('A' + dc%3)),
				string(rune('a' + rm%2)),
				string(rune('x' + rk%2)),
				string(rune('0' + sv%3))}
		}
		la := mk(a1, a2, b1, b2)
		lb := mk(a2, b1, b2, a1)
		return AvailabilityLevel(la, lb) == AvailabilityLevel(lb, la)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLevelString(t *testing.T) {
	for lv := LevelSameServer; lv <= LevelCrossDatacenter; lv++ {
		if lv.String() == "" {
			t.Fatalf("Level(%d).String() empty", lv)
		}
	}
	if Level(99).String() != "Level(99)" {
		t.Fatalf("unknown level format: %s", Level(99))
	}
}

func TestSameDatacenter(t *testing.T) {
	a := Label{"NA", "USA", "DC1", "RM1", "RK1", "S1"}
	b := Label{"NA", "USA", "DC1", "RM2", "RK2", "S9"}
	c := Label{"NA", "USA", "DC2", "RM1", "RK1", "S1"}
	if !SameDatacenter(a, b) {
		t.Fatal("a and b share a datacenter")
	}
	if SameDatacenter(a, c) {
		t.Fatal("a and c do not share a datacenter")
	}
}
