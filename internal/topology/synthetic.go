package topology

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// RandomGeometricWorld generates a synthetic planet: n datacenters at
// seeded-random coordinates on a sqrt(n)×sqrt(n) map, each linked to
// its degree nearest neighbours (link weight = distance), patched to
// connectivity with the shortest feasible extra links. Scaling
// experiments use it to push the simulator beyond the paper's fixed
// 10-datacenter world while preserving the geometric path structure
// that creates traffic hubs.
func RandomGeometricWorld(n, degree int, seed uint64) (*World, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: synthetic world needs at least 3 DCs, got %d", n)
	}
	if degree < 1 || degree >= n {
		return nil, fmt.Errorf("topology: degree %d outside [1,%d)", degree, n)
	}
	rng := stats.NewRNG(seed ^ 0x6E0)
	side := math.Sqrt(float64(n)) * 4
	dcs := make([]Datacenter, n)
	for i := range dcs {
		dcs[i] = Datacenter{
			Name:      fmt.Sprintf("S%03d", i),
			Continent: fmt.Sprintf("X%d", i/16),
			Country:   fmt.Sprintf("K%03d", i/4),
			X:         rng.Float64() * side,
			Y:         rng.Float64() * side,
		}
	}
	w := NewWorld(dcs)

	// k-nearest-neighbour links.
	type neighbour struct {
		id   DCID
		dist float64
	}
	for i := 0; i < n; i++ {
		nbs := make([]neighbour, 0, n-1)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			nbs = append(nbs, neighbour{DCID(j), w.Distance(DCID(i), DCID(j))})
		}
		sort.Slice(nbs, func(a, b int) bool {
			if nbs[a].dist != nbs[b].dist {
				return nbs[a].dist < nbs[b].dist
			}
			return nbs[a].id < nbs[b].id
		})
		for _, nb := range nbs[:degree] {
			if _, ok := w.Link(DCID(i), nb.id); ok {
				continue
			}
			if err := w.AddLink(DCID(i), nb.id, math.Max(nb.dist, 1e-6)); err != nil {
				return nil, err
			}
		}
	}

	// Patch disconnected components together: repeatedly join the
	// closest pair of DCs in different components.
	for {
		comp := components(w)
		if comp.count == 1 {
			break
		}
		bestA, bestB := DCID(-1), DCID(-1)
		bestD := math.Inf(1)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if comp.id[i] == comp.id[j] {
					continue
				}
				if d := w.Distance(DCID(i), DCID(j)); d < bestD {
					bestD, bestA, bestB = d, DCID(i), DCID(j)
				}
			}
		}
		if err := w.AddLink(bestA, bestB, math.Max(bestD, 1e-6)); err != nil {
			return nil, err
		}
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// componentSet labels each datacenter with a connected-component id.
type componentSet struct {
	id    []int
	count int
}

func components(w *World) componentSet {
	n := w.NumDCs()
	cs := componentSet{id: make([]int, n)}
	for i := range cs.id {
		cs.id[i] = -1
	}
	for i := 0; i < n; i++ {
		if cs.id[i] >= 0 {
			continue
		}
		queue := []DCID{DCID(i)}
		cs.id[i] = cs.count
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range w.Neighbors(cur) {
				if cs.id[nb] < 0 {
					cs.id[nb] = cs.count
					queue = append(queue, nb)
				}
			}
		}
		cs.count++
	}
	return cs
}
