package topology

import (
	"testing"
	"testing/quick"
)

func TestRandomGeometricWorldValid(t *testing.T) {
	for _, n := range []int{4, 10, 25, 64} {
		w, err := RandomGeometricWorld(n, 3, 7)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if w.NumDCs() != n {
			t.Fatalf("n=%d: got %d DCs", n, w.NumDCs())
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestRandomGeometricWorldErrors(t *testing.T) {
	if _, err := RandomGeometricWorld(2, 1, 1); err == nil {
		t.Fatal("n=2 accepted")
	}
	if _, err := RandomGeometricWorld(10, 0, 1); err == nil {
		t.Fatal("degree 0 accepted")
	}
	if _, err := RandomGeometricWorld(10, 10, 1); err == nil {
		t.Fatal("degree = n accepted")
	}
}

func TestRandomGeometricWorldDeterministic(t *testing.T) {
	a, err := RandomGeometricWorld(20, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomGeometricWorld(20, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if a.DC(DCID(i)).X != b.DC(DCID(i)).X {
			t.Fatal("coordinates not deterministic")
		}
		for j := 0; j < 20; j++ {
			wa, oka := a.Link(DCID(i), DCID(j))
			wb, okb := b.Link(DCID(i), DCID(j))
			if oka != okb || wa != wb {
				t.Fatal("links not deterministic")
			}
		}
	}
	c, err := RandomGeometricWorld(20, 3, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 20 && same; i++ {
		if a.DC(DCID(i)).X != c.DC(DCID(i)).X {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical coordinates")
	}
}

func TestRandomGeometricWorldMinDegree(t *testing.T) {
	check := func(seed uint64, n8, d8 uint8) bool {
		n := int(n8)%30 + 4
		degree := int(d8)%3 + 1
		w, err := RandomGeometricWorld(n, degree, seed)
		if err != nil {
			return false
		}
		// Every DC has at least `degree` links (kNN links are mutual or
		// added one-way, so the floor holds for the initiator side; the
		// union gives every node at least degree links).
		for i := 0; i < n; i++ {
			if len(w.Neighbors(DCID(i))) < degree {
				return false
			}
		}
		return w.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
