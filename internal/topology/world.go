package topology

import (
	"fmt"
	"math"
)

// DCID indexes a datacenter within a World. IDs are dense: 0..len-1.
type DCID int

// Datacenter is one site in the global deployment. X/Y are abstract map
// coordinates (thousands of km); Distance is Euclidean over them, which
// is the d_i factor in the paper's replication-cost equation (1).
type Datacenter struct {
	ID        DCID
	Name      string // single-letter names A..J in the paper's Fig. 1
	Continent string
	Country   string
	X, Y      float64
}

// World is the set of datacenters plus the inter-datacenter link graph
// over which queries are routed. Links are undirected and weighted
// (abstract latency). The link structure — not raw distance — determines
// routing paths, which is what makes some datacenters "traffic hubs".
type World struct {
	dcs   []Datacenter
	links [][]float64 // links[a][b] = weight, math.Inf(1) when absent
}

// NewWorld creates a world from the given datacenters with no links.
// Datacenter IDs are reassigned to their slice position.
func NewWorld(dcs []Datacenter) *World {
	w := &World{dcs: make([]Datacenter, len(dcs))}
	copy(w.dcs, dcs)
	for i := range w.dcs {
		w.dcs[i].ID = DCID(i)
	}
	w.links = make([][]float64, len(dcs))
	for i := range w.links {
		w.links[i] = make([]float64, len(dcs))
		for j := range w.links[i] {
			if i != j {
				w.links[i][j] = math.Inf(1)
			}
		}
	}
	return w
}

// NumDCs returns the number of datacenters.
func (w *World) NumDCs() int { return len(w.dcs) }

// DC returns the datacenter with the given id. It panics on an invalid
// id: ids come from the world itself, so a bad one is a programming
// error.
func (w *World) DC(id DCID) Datacenter {
	return w.dcs[id]
}

// DCByName returns the datacenter with the given name.
func (w *World) DCByName(name string) (Datacenter, bool) {
	for _, dc := range w.dcs {
		if dc.Name == name {
			return dc, true
		}
	}
	return Datacenter{}, false
}

// AddLink installs an undirected link of the given positive weight
// between a and b, replacing any existing link.
func (w *World) AddLink(a, b DCID, weight float64) error {
	if a == b {
		return fmt.Errorf("topology: self-link on DC %d", a)
	}
	if weight <= 0 {
		return fmt.Errorf("topology: link weight must be positive, got %g", weight)
	}
	if int(a) < 0 || int(a) >= len(w.dcs) || int(b) < 0 || int(b) >= len(w.dcs) {
		return fmt.Errorf("topology: link endpoints (%d,%d) out of range", a, b)
	}
	w.links[a][b] = weight
	w.links[b][a] = weight
	return nil
}

// Link returns the weight of the link between a and b and whether one
// exists.
func (w *World) Link(a, b DCID) (float64, bool) {
	if a == b {
		return 0, false
	}
	wt := w.links[a][b]
	if math.IsInf(wt, 1) {
		return 0, false
	}
	return wt, true
}

// Neighbors returns the ids of datacenters directly linked to id, in
// ascending id order (deterministic).
func (w *World) Neighbors(id DCID) []DCID {
	var out []DCID
	for j := range w.dcs {
		if _, ok := w.Link(id, DCID(j)); ok {
			out = append(out, DCID(j))
		}
	}
	return out
}

// Distance returns the Euclidean map distance between two datacenters;
// this is the d_i geographic-distance factor of eq. (1). Distance of a
// datacenter to itself is 0.
func (w *World) Distance(a, b DCID) float64 {
	da, db := w.dcs[a], w.dcs[b]
	dx, dy := da.X-db.X, da.Y-db.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// IntraDCDistance is the nominal distance charged for a replication that
// stays inside one datacenter (different server/rack/room). It is small
// but non-zero so intra-DC replication has non-zero, much cheaper cost —
// the effect §III-C relies on ("the replication cost is even lower than
// replicating on neighbors").
const IntraDCDistance = 0.05

// ServerDistance returns the eq. (1) distance between two servers given
// their labels and home datacenters: the DC-to-DC map distance when they
// differ, IntraDCDistance scaled by hierarchy proximity otherwise.
func (w *World) ServerDistance(aDC, bDC DCID, a, b Label) float64 {
	if aDC != bDC {
		return w.Distance(aDC, bDC)
	}
	switch AvailabilityLevel(a, b) {
	case LevelSameServer:
		return 0
	case LevelSameRack:
		return IntraDCDistance * 0.2
	case LevelSameRoom:
		return IntraDCDistance * 0.5
	default: // same datacenter, different rooms
		return IntraDCDistance
	}
}

// Validate checks structural invariants: symmetric links, positive
// weights, and that the link graph is connected (every DC can route to
// every other). The simulator requires connectivity.
func (w *World) Validate() error {
	n := len(w.dcs)
	if n == 0 {
		return fmt.Errorf("topology: world has no datacenters")
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if w.links[i][j] != w.links[j][i] {
				return fmt.Errorf("topology: asymmetric link (%d,%d)", i, j)
			}
			if i != j && !math.IsInf(w.links[i][j], 1) && w.links[i][j] <= 0 {
				return fmt.Errorf("topology: non-positive link weight (%d,%d)=%g", i, j, w.links[i][j])
			}
		}
	}
	// BFS connectivity from DC 0.
	seen := make([]bool, n)
	queue := []DCID{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range w.Neighbors(cur) {
			if !seen[nb] {
				seen[nb] = true
				count++
				queue = append(queue, nb)
			}
		}
	}
	if count != n {
		return fmt.Errorf("topology: link graph is disconnected (%d of %d reachable)", count, n)
	}
	return nil
}
