package topology

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewWorldAssignsDenseIDs(t *testing.T) {
	w := NewWorld([]Datacenter{{Name: "X"}, {Name: "Y"}, {Name: "Z"}})
	for i := 0; i < w.NumDCs(); i++ {
		if w.DC(DCID(i)).ID != DCID(i) {
			t.Fatalf("DC %d has ID %d", i, w.DC(DCID(i)).ID)
		}
	}
}

func TestAddLinkAndLookup(t *testing.T) {
	w := NewWorld([]Datacenter{{Name: "X"}, {Name: "Y"}})
	if err := w.AddLink(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	wt, ok := w.Link(0, 1)
	if !ok || wt != 2.5 {
		t.Fatalf("Link(0,1) = %g,%v", wt, ok)
	}
	wt, ok = w.Link(1, 0)
	if !ok || wt != 2.5 {
		t.Fatalf("link not symmetric: %g,%v", wt, ok)
	}
	if _, ok := w.Link(0, 0); ok {
		t.Fatal("self link reported")
	}
}

func TestAddLinkErrors(t *testing.T) {
	w := NewWorld([]Datacenter{{Name: "X"}, {Name: "Y"}})
	if err := w.AddLink(0, 0, 1); err == nil {
		t.Fatal("self link accepted")
	}
	if err := w.AddLink(0, 1, 0); err == nil {
		t.Fatal("zero weight accepted")
	}
	if err := w.AddLink(0, 1, -1); err == nil {
		t.Fatal("negative weight accepted")
	}
	if err := w.AddLink(0, 5, 1); err == nil {
		t.Fatal("out of range endpoint accepted")
	}
}

func TestNeighborsDeterministicOrder(t *testing.T) {
	w := NewWorld([]Datacenter{{}, {}, {}, {}})
	_ = w.AddLink(2, 0, 1)
	_ = w.AddLink(2, 3, 1)
	_ = w.AddLink(2, 1, 1)
	nb := w.Neighbors(2)
	want := []DCID{0, 1, 3}
	if len(nb) != 3 {
		t.Fatalf("neighbors = %v", nb)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("neighbors = %v, want %v", nb, want)
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	w := PaperWorld()
	n := w.NumDCs()
	for i := 0; i < n; i++ {
		if w.Distance(DCID(i), DCID(i)) != 0 {
			t.Fatalf("self distance DC %d non-zero", i)
		}
		for j := 0; j < n; j++ {
			dij := w.Distance(DCID(i), DCID(j))
			if dij != w.Distance(DCID(j), DCID(i)) {
				t.Fatalf("distance asymmetric (%d,%d)", i, j)
			}
			if i != j && dij <= 0 {
				t.Fatalf("distance (%d,%d) = %g not positive", i, j, dij)
			}
		}
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	w := PaperWorld()
	n := w.NumDCs()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if w.Distance(DCID(i), DCID(j)) > w.Distance(DCID(i), DCID(k))+w.Distance(DCID(k), DCID(j))+1e-9 {
					t.Fatalf("triangle inequality violated for (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestServerDistance(t *testing.T) {
	w := PaperWorld()
	a, _ := w.DCByName("A")
	b, _ := w.DCByName("B")
	l1 := Label{"NA", "USA", "A", "RM1", "RK1", "S1"}
	l2 := Label{"NA", "USA", "A", "RM1", "RK1", "S2"} // same rack
	l3 := Label{"NA", "USA", "A", "RM1", "RK2", "S1"} // same room
	l4 := Label{"NA", "USA", "A", "RM2", "RK1", "S1"} // same dc
	lb := Label{"NA", "USA", "B", "RM1", "RK1", "S1"}

	if d := w.ServerDistance(a.ID, a.ID, l1, l1); d != 0 {
		t.Fatalf("same server distance = %g", d)
	}
	dRack := w.ServerDistance(a.ID, a.ID, l1, l2)
	dRoom := w.ServerDistance(a.ID, a.ID, l1, l3)
	dDC := w.ServerDistance(a.ID, a.ID, l1, l4)
	dCross := w.ServerDistance(a.ID, b.ID, l1, lb)
	if !(0 < dRack && dRack < dRoom && dRoom < dDC && dDC < dCross) {
		t.Fatalf("distance ordering broken: rack=%g room=%g dc=%g cross=%g", dRack, dRoom, dDC, dCross)
	}
	if dCross != w.Distance(a.ID, b.ID) {
		t.Fatalf("cross-DC server distance %g != DC distance %g", dCross, w.Distance(a.ID, b.ID))
	}
}

func TestValidateDetectsDisconnected(t *testing.T) {
	w := NewWorld([]Datacenter{{}, {}, {}})
	_ = w.AddLink(0, 1, 1)
	if err := w.Validate(); err == nil {
		t.Fatal("disconnected world validated")
	}
	_ = w.AddLink(1, 2, 1)
	if err := w.Validate(); err != nil {
		t.Fatalf("connected world rejected: %v", err)
	}
}

func TestValidateEmptyWorld(t *testing.T) {
	w := NewWorld(nil)
	if err := w.Validate(); err == nil {
		t.Fatal("empty world validated")
	}
}

func TestPaperWorldShape(t *testing.T) {
	w := PaperWorld()
	if w.NumDCs() != 10 {
		t.Fatalf("PaperWorld has %d DCs, want 10", w.NumDCs())
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// Country composition from §III-A: 3 USA, 2 Canada, 2 Switzerland,
	// 3 China/Japan.
	counts := map[string]int{}
	for i := 0; i < w.NumDCs(); i++ {
		counts[w.DC(DCID(i)).Country]++
	}
	if counts["USA"] != 3 || counts["CAN"] != 2 || counts["CHE"] != 2 || counts["CHN"]+counts["JPN"] != 3 {
		t.Fatalf("country composition wrong: %v", counts)
	}
	for _, name := range []string{"A", "B", "C", "D", "E", "F", "G", "H", "I", "J"} {
		if _, ok := w.DCByName(name); !ok {
			t.Fatalf("missing DC %s", name)
		}
	}
	if _, ok := w.DCByName("Z"); ok {
		t.Fatal("found nonexistent DC Z")
	}
}

func TestRingWorld(t *testing.T) {
	w := RingWorld(6)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if got := len(w.Neighbors(DCID(i))); got != 2 {
			t.Fatalf("ring node %d has %d neighbors", i, got)
		}
	}
}

func TestRingWorldPanicsOnSmallN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RingWorld(2) did not panic")
		}
	}()
	RingWorld(2)
}

func TestGridWorld(t *testing.T) {
	w := GridWorld(3, 4)
	if w.NumDCs() != 12 {
		t.Fatalf("grid has %d DCs", w.NumDCs())
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corner has 2 neighbors, interior has 4.
	if got := len(w.Neighbors(0)); got != 2 {
		t.Fatalf("corner neighbors = %d", got)
	}
	if got := len(w.Neighbors(DCID(1*4 + 1))); got != 4 {
		t.Fatalf("interior neighbors = %d", got)
	}
}

func TestWorldLinkWeightsFinite(t *testing.T) {
	check := func(n8 uint8) bool {
		n := int(n8)%8 + 3
		w := RingWorld(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if wt, ok := w.Link(DCID(i), DCID(j)); ok && (math.IsInf(wt, 0) || wt <= 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
