// Package trace renders experiment results — figures, metric
// recorders, and tables — as CSV and aligned text, for inspection and
// for regenerating the paper's plots with external tooling.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

// WriteFigureCSV writes a figure as CSV: an epoch column followed by
// one column per curve. Ragged curves are padded with empty cells.
func WriteFigureCSV(w io.Writer, fig *experiments.Figure) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(fig.Series)+1)
	header = append(header, "epoch")
	maxLen := 0
	for _, s := range fig.Series {
		header = append(header, s.Name)
		if len(s.Points) > maxLen {
			maxLen = len(s.Points)
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for e := 0; e < maxLen; e++ {
		row[0] = strconv.Itoa(e)
		for i, s := range fig.Series {
			if e < len(s.Points) {
				row[i+1] = strconv.FormatFloat(s.Points[e], 'g', 8, 64)
			} else {
				row[i+1] = ""
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteRecorderCSV writes every series of a recorder as CSV columns.
func WriteRecorderCSV(w io.Writer, rec *metrics.Recorder) error {
	cw := csv.NewWriter(w)
	names := rec.Names()
	header := append([]string{"epoch"}, names...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for e := 0; e < rec.Epochs(); e++ {
		row[0] = strconv.Itoa(e)
		for i, n := range names {
			s := rec.Series(n)
			if e < len(s.Points) {
				row[i+1] = strconv.FormatFloat(s.Points[e], 'g', 8, 64)
			} else {
				row[i+1] = ""
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FigureSummary renders one row per curve with head/tail statistics —
// the quick textual view of a figure's shape.
func FigureSummary(fig *experiments.Figure) string {
	out := fig.Title + "\n"
	out += fmt.Sprintf("  %-16s %12s %12s %12s %12s\n", "series", "first", "early(5)", "late(1/4)", "last")
	for _, s := range fig.Series {
		if len(s.Points) == 0 {
			out += fmt.Sprintf("  %-16s %12s\n", s.Name, "(empty)")
			continue
		}
		out += fmt.Sprintf("  %-16s %12.4g %12.4g %12.4g %12.4g\n",
			s.Name, s.Points[0], meanHead(s.Points, 5), meanTail(s.Points), s.Points[len(s.Points)-1])
	}
	return out
}

// WriteTable renders (name, value) rows as aligned text.
func WriteTable(w io.Writer, title string, rows [][2]string) error {
	if _, err := fmt.Fprintln(w, title); err != nil {
		return err
	}
	width := 0
	for _, r := range rows {
		if len(r[0]) > width {
			width = len(r[0])
		}
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "  %-*s  %s\n", width, r[0], r[1]); err != nil {
			return err
		}
	}
	return nil
}

// WriteShapeReport renders a shape-check report as text, one line per
// claim.
func WriteShapeReport(w io.Writer, rep *experiments.ShapeReport) error {
	for _, c := range rep.Claims {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		if _, err := fmt.Fprintf(w, "[%s] fig %-3s %-62s %s\n", status, rep.Figure, c.Description, c.Detail); err != nil {
			return err
		}
	}
	return nil
}

func meanHead(pts []float64, n int) float64 {
	if len(pts) < n {
		n = len(pts)
	}
	sum := 0.0
	for _, v := range pts[:n] {
		sum += v
	}
	return sum / float64(n)
}

func meanTail(pts []float64) float64 {
	tail := pts[len(pts)*3/4:]
	if len(tail) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range tail {
		sum += v
	}
	return sum / float64(len(tail))
}
