package trace

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func sampleFigure() *experiments.Figure {
	return &experiments.Figure{
		ID:     "3a",
		Title:  "Fig. 3a: test",
		YLabel: "utilization",
		Series: []experiments.Labeled{
			{Name: "rfh", Points: []float64{0.1, 0.2, 0.3}},
			{Name: "random", Points: []float64{0.05, 0.04}},
		},
	}
}

func TestWriteFigureCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFigureCSV(&buf, sampleFigure()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want header + 3", len(rows))
	}
	if rows[0][0] != "epoch" || rows[0][1] != "rfh" || rows[0][2] != "random" {
		t.Fatalf("header = %v", rows[0])
	}
	if rows[1][1] != "0.1" || rows[1][2] != "0.05" {
		t.Fatalf("first data row = %v", rows[1])
	}
	// Ragged series padded with empty cell.
	if rows[3][2] != "" {
		t.Fatalf("short series not padded: %v", rows[3])
	}
}

func TestWriteRecorderCSV(t *testing.T) {
	rec := metrics.NewRecorder()
	rec.Append("a", 1)
	rec.Append("b", 2)
	rec.Append("a", 3)
	rec.Append("b", 4)
	var buf bytes.Buffer
	if err := WriteRecorderCSV(&buf, rec); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][1] != "a" || rows[0][2] != "b" {
		t.Fatalf("header = %v", rows[0])
	}
	if rows[2][1] != "3" || rows[2][2] != "4" {
		t.Fatalf("second data row = %v", rows[2])
	}
}

func TestFigureSummary(t *testing.T) {
	out := FigureSummary(sampleFigure())
	if !strings.Contains(out, "Fig. 3a") || !strings.Contains(out, "rfh") || !strings.Contains(out, "random") {
		t.Fatalf("summary missing content:\n%s", out)
	}
	empty := &experiments.Figure{ID: "x", Title: "t", Series: []experiments.Labeled{{Name: "e"}}}
	if out := FigureSummary(empty); !strings.Contains(out, "(empty)") {
		t.Fatalf("empty series not marked:\n%s", out)
	}
}

func TestWriteTable(t *testing.T) {
	var buf bytes.Buffer
	rows := [][2]string{{"alpha", "0.2"}, {"a-much-longer-name", "42"}}
	if err := WriteTable(&buf, "Table I", rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "alpha") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
}

func TestWriteShapeReport(t *testing.T) {
	rep := &experiments.ShapeReport{
		Figure: "3a",
		Claims: []experiments.Claim{
			{Description: "good", Pass: true, Detail: "x=1"},
			{Description: "bad", Pass: false, Detail: "y=2"},
		},
	}
	var buf bytes.Buffer
	if err := WriteShapeReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "[PASS]") || !strings.Contains(out, "[FAIL]") {
		t.Fatalf("report output:\n%s", out)
	}
	if rep.Failed() != 1 {
		t.Fatalf("failed = %d", rep.Failed())
	}
}
