package traffic

import (
	"testing"

	"repro/internal/network"
	"repro/internal/topology"
)

func benchSetup(b *testing.B) (*Propagator, []int, []int) {
	b.Helper()
	r, err := network.NewRouter(topology.PaperWorld())
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]int, 10)
	capacity := make([]int, 10)
	for i := range queries {
		queries[i] = 30
		if i%3 == 0 {
			capacity[i] = 70
		}
	}
	return NewPropagator(r), queries, capacity
}

func BenchmarkPropagate(b *testing.B) {
	pr, q, c := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pr.Propagate(0, q, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeNearest(b *testing.B) {
	pr, q, c := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pr.ServeNearest(0, q, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrackerEpoch(b *testing.B) {
	tr, err := NewTracker(64, 10, DefaultThresholds())
	if err != nil {
		b.Fatal(err)
	}
	res := &ServeResult{
		TrafficByDC:  make([]int, 10),
		ServedByDC:   make([]int, 10),
		TotalQueries: 300,
	}
	for i := range res.TrafficByDC {
		res.TrafficByDC[i] = 30
		res.ServedByDC[i] = 30
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.BeginEpoch()
		for p := 0; p < 64; p++ {
			tr.Observe(p, 0, res)
		}
		tr.EndEpoch()
	}
}
