package traffic

import (
	"fmt"
	"sort"

	"repro/internal/network"
	"repro/internal/topology"
)

// NearestOrder precomputes, for every requester datacenter, all
// datacenters sorted by routing cost (then hop count, then id). The
// order depends only on the topology, so it can be computed once and
// shared across every propagator over the same router (see
// Propagator.ShareNearestOrder).
func NearestOrder(router *network.Router) [][]topology.DCID {
	n := router.World().NumDCs()
	orders := make([][]topology.DCID, n)
	for j := 0; j < n; j++ {
		order := make([]topology.DCID, n)
		for d := range order {
			order[d] = topology.DCID(d)
		}
		src := topology.DCID(j)
		sort.Slice(order, func(a, b int) bool {
			ca, cb := router.Cost(src, order[a]), router.Cost(src, order[b])
			if ca != cb {
				return ca < cb
			}
			la, lb := router.Path(src, order[a]).Len(), router.Path(src, order[b]).Len()
			if la != lb {
				return la < lb
			}
			return order[a] < order[b]
		})
		orders[j] = order
	}
	return orders
}

// ServeNearest models the direct DHT lookup of §II-B ("routes messages
// directly to the closest node which has the desired ID"): each
// requester's queries are served by the nearest datacenter holding
// replica capacity, spilling to the next nearest when capacity runs
// out; queries that find no capacity anywhere travel the full path to
// the holder and count as unserved.
//
// Traffic is recorded along each query's actual route — every
// datacenter a query batch traverses (endpoints included) sees that
// batch as arrivals. Before any replicas exist all routes end at the
// holder, so path-conjunction datacenters accumulate exactly the
// forwarding traffic of eqs. (2)–(8); as replicas appear the routes
// shorten and the traffic redistributes, which is the feedback signal
// the RFH decision tree reacts to.
//
// The returned ServeResult is owned by the propagator and overwritten
// by the next call to Propagate or ServeNearest.
func (pr *Propagator) ServeNearest(holder topology.DCID, queriesByDC, capacityByDC []int) (*ServeResult, error) {
	n := pr.router.World().NumDCs()
	if len(queriesByDC) != n || len(capacityByDC) != n {
		return nil, fmt.Errorf("traffic: dimension mismatch: %d DCs, %d queries, %d capacities",
			n, len(queriesByDC), len(capacityByDC))
	}
	if int(holder) < 0 || int(holder) >= n {
		return nil, fmt.Errorf("traffic: holder DC %d out of range", holder)
	}
	if pr.nearest == nil {
		pr.nearest = NearestOrder(pr.router)
	}
	res := &pr.result
	res.Unserved = 0
	res.TotalQueries = 0
	res.HopsSum = 0
	for d := 0; d < n; d++ {
		res.TrafficByDC[d] = 0
		res.ServedByDC[d] = 0
		res.HopHist[d] = 0
		if capacityByDC[d] < 0 {
			return nil, fmt.Errorf("traffic: negative capacity at DC %d", d)
		}
		if queriesByDC[d] < 0 {
			return nil, fmt.Errorf("traffic: negative demand at DC %d", d)
		}
		pr.capRem[d] = capacityByDC[d]
	}

	for j := 0; j < n; j++ {
		q := queriesByDC[j]
		if q == 0 {
			continue
		}
		res.TotalQueries += q
		residual := q
		for _, dc := range pr.nearest[j] {
			if pr.capRem[dc] == 0 {
				continue
			}
			served := residual
			if pr.capRem[dc] < served {
				served = pr.capRem[dc]
			}
			pr.capRem[dc] -= served
			res.ServedByDC[dc] += served
			path := pr.router.Path(topology.DCID(j), dc)
			for _, hop := range path.Hops {
				res.TrafficByDC[hop] += served
			}
			res.HopsSum += path.Len() * served
			res.HopHist[path.Len()] += served
			residual -= served
			if residual == 0 {
				break
			}
		}
		if residual > 0 {
			// No capacity anywhere: the lookup ran to the holder and was
			// turned away.
			res.Unserved += residual
			path := pr.router.Path(topology.DCID(j), holder)
			for _, hop := range path.Hops {
				res.TrafficByDC[hop] += residual
			}
			res.HopsSum += path.Len() * residual
		}
	}
	return res, nil
}
