package traffic

import (
	"testing"
	"testing/quick"
)

func TestServeNearestDimensionChecks(t *testing.T) {
	pr, _ := paperProp(t)
	if _, err := pr.ServeNearest(0, make([]int, 5), make([]int, 10)); err == nil {
		t.Fatal("short queries accepted")
	}
	if _, err := pr.ServeNearest(0, make([]int, 10), make([]int, 5)); err == nil {
		t.Fatal("short capacities accepted")
	}
	if _, err := pr.ServeNearest(99, make([]int, 10), make([]int, 10)); err == nil {
		t.Fatal("bad holder accepted")
	}
	bad := make([]int, 10)
	bad[0] = -1
	if _, err := pr.ServeNearest(0, bad, make([]int, 10)); err == nil {
		t.Fatal("negative demand accepted")
	}
	if _, err := pr.ServeNearest(0, make([]int, 10), bad); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestServeNearestLocalFirst(t *testing.T) {
	pr, r := paperProp(t)
	h, a := dc(t, r, "H"), dc(t, r, "A")
	queries := make([]int, 10)
	capacity := make([]int, 10)
	queries[h] = 40
	capacity[h] = 100 // local replica
	capacity[a] = 100 // distant holder
	res, err := pr.ServeNearest(a, queries, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedByDC[h] != 40 || res.ServedByDC[a] != 0 {
		t.Fatalf("local replica not preferred: %v", res.ServedByDC)
	}
	if res.HopsSum != 0 {
		t.Fatalf("local service paid %d hops", res.HopsSum)
	}
}

func TestServeNearestSpillsToNext(t *testing.T) {
	// H's demand exceeds its local capacity; the residual goes to the
	// next-nearest capable DC (F, one hop), not all the way to A.
	pr, r := paperProp(t)
	h, f, a := dc(t, r, "H"), dc(t, r, "F"), dc(t, r, "A")
	queries := make([]int, 10)
	capacity := make([]int, 10)
	queries[h] = 100
	capacity[h] = 30
	capacity[f] = 30
	capacity[a] = 100
	res, err := pr.ServeNearest(a, queries, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedByDC[h] != 30 || res.ServedByDC[f] != 30 || res.ServedByDC[a] != 40 {
		t.Fatalf("spill order wrong: %v", res.ServedByDC)
	}
	// Hops: 30×0 + 30×1 + 40×3 (H→A is 3 hops).
	if res.HopsSum != 30*1+40*3 {
		t.Fatalf("hops = %d", res.HopsSum)
	}
	if res.Unserved != 0 {
		t.Fatalf("unserved = %d", res.Unserved)
	}
}

func TestServeNearestUnservedTravelsToHolder(t *testing.T) {
	pr, r := paperProp(t)
	h, a := dc(t, r, "H"), dc(t, r, "A")
	queries := make([]int, 10)
	queries[h] = 25
	res, err := pr.ServeNearest(a, queries, make([]int, 10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Unserved != 25 {
		t.Fatalf("unserved = %d", res.Unserved)
	}
	// Traffic recorded along the full H→A path.
	for _, name := range []string{"H", "F", "D", "A"} {
		if got := res.TrafficByDC[dc(t, r, name)]; got != 25 {
			t.Fatalf("traffic at %s = %d", name, got)
		}
	}
	if res.HopsSum != 25*3 {
		t.Fatalf("hops = %d", res.HopsSum)
	}
}

func TestServeNearestTrafficAlongRoute(t *testing.T) {
	// H served at D (2 hops via F): H, F and D all see the batch.
	pr, r := paperProp(t)
	h, f, d, a := dc(t, r, "H"), dc(t, r, "F"), dc(t, r, "D"), dc(t, r, "A")
	queries := make([]int, 10)
	capacity := make([]int, 10)
	queries[h] = 50
	capacity[d] = 100
	res, err := pr.ServeNearest(a, queries, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedByDC[d] != 50 {
		t.Fatalf("served = %v", res.ServedByDC)
	}
	for _, dcID := range []int{int(h), int(f), int(d)} {
		if res.TrafficByDC[dcID] != 50 {
			t.Fatalf("traffic at DC %d = %d", dcID, res.TrafficByDC[dcID])
		}
	}
	if res.TrafficByDC[a] != 0 {
		t.Fatal("holder saw traffic for a query served upstream")
	}
}

func TestServeNearestConservation(t *testing.T) {
	pr, r := paperProp(t)
	holder := dc(t, r, "A")
	check := func(qs, cs [10]uint8) bool {
		queries := make([]int, 10)
		capacity := make([]int, 10)
		total := 0
		for i := 0; i < 10; i++ {
			queries[i] = int(qs[i])
			capacity[i] = int(cs[i]) / 2
			total += queries[i]
		}
		res, err := pr.ServeNearest(holder, queries, capacity)
		if err != nil {
			return false
		}
		served := 0
		for d2, s := range res.ServedByDC {
			if s > capacity[d2] {
				return false
			}
			served += s
		}
		if served+res.Unserved != total || res.TotalQueries != total {
			return false
		}
		// Hop histogram sums to the served count.
		hist := 0
		for _, n := range res.HopHist {
			hist += n
		}
		return hist == served
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestServeNearestHopHistogramMatchesHops(t *testing.T) {
	pr, r := paperProp(t)
	a := dc(t, r, "A")
	queries := make([]int, 10)
	capacity := make([]int, 10)
	for i := range queries {
		queries[i] = 30
	}
	capacity[a] = 200
	capacity[dc(t, r, "F")] = 200
	res, err := pr.ServeNearest(a, queries, capacity)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for h, n := range res.HopHist {
		sum += h * n
	}
	unservedHops := res.HopsSum - sum
	if unservedHops < 0 {
		t.Fatalf("histogram hop mass %d exceeds total %d", sum, res.HopsSum)
	}
}

func TestServeNearestResultReused(t *testing.T) {
	pr, r := paperProp(t)
	a := dc(t, r, "A")
	queries := make([]int, 10)
	queries[dc(t, r, "H")] = 10
	res1, err := pr.ServeNearest(a, queries, make([]int, 10))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := pr.ServeNearest(a, make([]int, 10), make([]int, 10))
	if err != nil {
		t.Fatal(err)
	}
	if res1 != res2 {
		t.Fatal("propagator should reuse its result buffer")
	}
	if res2.Unserved != 0 || res2.TotalQueries != 0 {
		t.Fatal("stale state leaked")
	}
}

func TestServeNearestAndPropagateAgreeOnEmptyWorld(t *testing.T) {
	// With zero capacity everywhere both models leave everything
	// unserved with identical holder-path traffic.
	pr, r := paperProp(t)
	a := dc(t, r, "A")
	queries := make([]int, 10)
	for i := range queries {
		queries[i] = 10
	}
	resN, err := pr.ServeNearest(a, queries, make([]int, 10))
	if err != nil {
		t.Fatal(err)
	}
	nearTraffic := append([]int(nil), resN.TrafficByDC...)
	nearUnserved := resN.Unserved
	resP, err := pr.Propagate(a, queries, make([]int, 10))
	if err != nil {
		t.Fatal(err)
	}
	if nearUnserved != resP.Unserved {
		t.Fatalf("unserved differ: %d vs %d", nearUnserved, resP.Unserved)
	}
	for d2 := range nearTraffic {
		if nearTraffic[d2] != resP.TrafficByDC[d2] {
			t.Fatalf("traffic differs at DC %d: %d vs %d", d2, nearTraffic[d2], resP.TrafficByDC[d2])
		}
	}
}
