// Package traffic implements the traffic-determination model of §II-C,
// equations (2)–(13), and the migration/suicide thresholds (15)–(17).
//
// Queries for a partition travel from each requester datacenter along
// the routed path toward the partition holder. Every datacenter on the
// path that hosts replicas absorbs queries up to its remaining replica
// capacity; the residual overflows to the next hop (eqs. 2–6). The
// *traffic* of a datacenter for a partition is the number of queries
// that arrive at it — requesters' own queries plus upstream overflow —
// which is exactly what makes path-conjunction datacenters "traffic
// hubs". A Tracker smooths per-datacenter traffic and the system
// average query with the EWMA of eqs. (10)–(11) and evaluates the β
// (holder overload), γ (hub), δ (cold replica) and μ (migration
// benefit) threshold conditions.
package traffic

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/topology"
)

// ServeResult reports what happened to one partition's queries during
// one epoch of propagation.
type ServeResult struct {
	// TrafficByDC[d] is the number of queries that arrived at
	// datacenter d (tr contribution of eqs. 2–8).
	TrafficByDC []int
	// ServedByDC[d] is the number of queries served by replicas at d.
	ServedByDC []int
	// Unserved is the overflow left after the holder's capacity was
	// exhausted — queries that could not be handled this epoch.
	Unserved int
	// TotalQueries is the number of queries propagated.
	TotalQueries int
	// HopsSum accumulates (lookup hops × queries): served queries count
	// the hops from their requester to the serving datacenter, unserved
	// queries the full path to the holder. HopsSum/TotalQueries is the
	// mean lookup path length (Fig. 9 metric).
	HopsSum int
	// HopHist[h] counts served queries whose lookup took exactly h
	// hops. Unserved queries are not in the histogram (they count as
	// SLA violations regardless of distance).
	HopHist []int
}

// MeanPathLength returns the average lookup path length in hops.
func (r *ServeResult) MeanPathLength() float64 {
	if r.TotalQueries == 0 {
		return 0
	}
	return float64(r.HopsSum) / float64(r.TotalQueries)
}

// Propagator runs the overflow propagation for one partition at a time,
// reusing scratch buffers across calls. It is not safe for concurrent
// use; create one per worker goroutine.
type Propagator struct {
	router  *network.Router
	capRem  []int
	result  ServeResult
	nearest [][]topology.DCID // lazily built by ServeNearest
}

// NewPropagator creates a propagator over the given router.
func NewPropagator(router *network.Router) *Propagator {
	n := router.World().NumDCs()
	return &Propagator{
		router: router,
		capRem: make([]int, n),
		result: ServeResult{
			TrafficByDC: make([]int, n),
			ServedByDC:  make([]int, n),
			HopHist:     make([]int, n),
		},
	}
}

// ShareNearestOrder installs a precomputed NearestOrder table, so a
// fleet of propagators over the same router (one per worker) shares one
// copy instead of each building its own on first ServeNearest call.
func (pr *Propagator) ShareNearestOrder(orders [][]topology.DCID) {
	pr.nearest = orders
}

// Propagate serves one partition's epoch demand. queriesByDC[j] is
// q_ijt (demand from requester datacenter j); capacityByDC[d] is the
// total per-epoch serving capacity of the partition's replicas hosted
// in datacenter d (Σ_l C_ikl over servers k in d); holder is the
// datacenter of the primary copy. Requesters are processed in ascending
// datacenter order, sharing replica capacity deterministically.
//
// The returned ServeResult is owned by the propagator and overwritten
// by the next call; copy what must be retained.
func (pr *Propagator) Propagate(holder topology.DCID, queriesByDC, capacityByDC []int) (*ServeResult, error) {
	n := pr.router.World().NumDCs()
	if len(queriesByDC) != n || len(capacityByDC) != n {
		return nil, fmt.Errorf("traffic: dimension mismatch: %d DCs, %d queries, %d capacities",
			n, len(queriesByDC), len(capacityByDC))
	}
	if int(holder) < 0 || int(holder) >= n {
		return nil, fmt.Errorf("traffic: holder DC %d out of range", holder)
	}
	res := &pr.result
	res.Unserved = 0
	res.TotalQueries = 0
	res.HopsSum = 0
	for d := 0; d < n; d++ {
		res.TrafficByDC[d] = 0
		res.ServedByDC[d] = 0
		res.HopHist[d] = 0
		if capacityByDC[d] < 0 {
			return nil, fmt.Errorf("traffic: negative capacity at DC %d", d)
		}
		if queriesByDC[d] < 0 {
			return nil, fmt.Errorf("traffic: negative demand at DC %d", d)
		}
		pr.capRem[d] = capacityByDC[d]
	}

	for j := 0; j < n; j++ {
		q := queriesByDC[j]
		if q == 0 {
			continue
		}
		res.TotalQueries += q
		path := pr.router.Path(topology.DCID(j), holder)
		residual := q
		for hop, dc := range path.Hops {
			// eq. (2)/(3): the traffic of a node is what arrives at it —
			// the requester's own demand at hop 0, upstream overflow
			// afterwards.
			res.TrafficByDC[dc] += residual
			if pr.capRem[dc] > 0 {
				served := residual
				if pr.capRem[dc] < served {
					served = pr.capRem[dc]
				}
				pr.capRem[dc] -= served
				res.ServedByDC[dc] += served
				res.HopsSum += hop * served
				res.HopHist[hop] += served
				residual -= served
				if residual == 0 {
					break
				}
			}
		}
		if residual > 0 {
			// Overflow past the holder: eq. (6) residual, the paper's
			// overload signal. These queries paid the full path.
			res.Unserved += residual
			res.HopsSum += path.Len() * residual
		}
	}
	return res, nil
}
