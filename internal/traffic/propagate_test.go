package traffic

import (
	"testing"
	"testing/quick"

	"repro/internal/network"
	"repro/internal/topology"
)

func paperProp(t *testing.T) (*Propagator, *network.Router) {
	t.Helper()
	r, err := network.NewRouter(topology.PaperWorld())
	if err != nil {
		t.Fatal(err)
	}
	return NewPropagator(r), r
}

func dc(t *testing.T, r *network.Router, name string) topology.DCID {
	t.Helper()
	d, ok := r.World().DCByName(name)
	if !ok {
		t.Fatalf("no DC %s", name)
	}
	return d.ID
}

func TestPropagateDimensionChecks(t *testing.T) {
	pr, _ := paperProp(t)
	if _, err := pr.Propagate(0, make([]int, 5), make([]int, 10)); err == nil {
		t.Fatal("short queries accepted")
	}
	if _, err := pr.Propagate(0, make([]int, 10), make([]int, 5)); err == nil {
		t.Fatal("short capacities accepted")
	}
	if _, err := pr.Propagate(99, make([]int, 10), make([]int, 10)); err == nil {
		t.Fatal("bad holder accepted")
	}
	bad := make([]int, 10)
	bad[0] = -1
	if _, err := pr.Propagate(0, bad, make([]int, 10)); err == nil {
		t.Fatal("negative demand accepted")
	}
	if _, err := pr.Propagate(0, make([]int, 10), bad); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestPropagateLocalService(t *testing.T) {
	pr, r := paperProp(t)
	h := dc(t, r, "H")
	a := dc(t, r, "A")
	queries := make([]int, 10)
	capacity := make([]int, 10)
	queries[h] = 50
	capacity[h] = 100 // replica in the requester's own DC
	res, err := pr.Propagate(a, queries, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedByDC[h] != 50 || res.Unserved != 0 {
		t.Fatalf("local replica did not absorb: %+v", res)
	}
	if res.HopsSum != 0 {
		t.Fatalf("local service paid %d hops", res.HopsSum)
	}
	if res.TrafficByDC[h] != 50 {
		t.Fatalf("requester traffic = %d, want 50", res.TrafficByDC[h])
	}
	if res.TrafficByDC[a] != 0 {
		t.Fatalf("holder saw traffic %d after full local absorption", res.TrafficByDC[a])
	}
}

func TestPropagateOverflowChain(t *testing.T) {
	// H -> F -> D -> A: 100 queries from H, capacity 30 at F, 30 at D,
	// 30 at A. Expect 30 served at F (1 hop), 30 at D (2 hops), 30 at A
	// (3 hops), 10 unserved (3 hops).
	pr, r := paperProp(t)
	h, f, d, a := dc(t, r, "H"), dc(t, r, "F"), dc(t, r, "D"), dc(t, r, "A")
	queries := make([]int, 10)
	capacity := make([]int, 10)
	queries[h] = 100
	capacity[f], capacity[d], capacity[a] = 30, 30, 30
	res, err := pr.Propagate(a, queries, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedByDC[f] != 30 || res.ServedByDC[d] != 30 || res.ServedByDC[a] != 30 {
		t.Fatalf("served = F:%d D:%d A:%d", res.ServedByDC[f], res.ServedByDC[d], res.ServedByDC[a])
	}
	if res.Unserved != 10 {
		t.Fatalf("unserved = %d, want 10", res.Unserved)
	}
	// Traffic: H sees 100 (its own), F sees 100 (all arrive), D sees 70,
	// A sees 40.
	if res.TrafficByDC[h] != 100 || res.TrafficByDC[f] != 100 || res.TrafficByDC[d] != 70 || res.TrafficByDC[a] != 40 {
		t.Fatalf("traffic = H:%d F:%d D:%d A:%d", res.TrafficByDC[h], res.TrafficByDC[f], res.TrafficByDC[d], res.TrafficByDC[a])
	}
	wantHops := 30*1 + 30*2 + 30*3 + 10*3
	if res.HopsSum != wantHops {
		t.Fatalf("hops = %d, want %d", res.HopsSum, wantHops)
	}
	if res.TotalQueries != 100 {
		t.Fatalf("total = %d", res.TotalQueries)
	}
}

func TestPropagateNoCapacityAllUnserved(t *testing.T) {
	pr, r := paperProp(t)
	h, a := dc(t, r, "H"), dc(t, r, "A")
	queries := make([]int, 10)
	queries[h] = 40
	res, err := pr.Propagate(a, queries, make([]int, 10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Unserved != 40 {
		t.Fatalf("unserved = %d", res.Unserved)
	}
	// All queries pay the full H->A path (3 hops).
	if res.HopsSum != 40*3 {
		t.Fatalf("hops = %d", res.HopsSum)
	}
	// Every DC on the path sees the full 40.
	for _, name := range []string{"H", "F", "D", "A"} {
		if got := res.TrafficByDC[dc(t, r, name)]; got != 40 {
			t.Fatalf("traffic at %s = %d, want 40", name, got)
		}
	}
}

func TestPropagateSharedCapacity(t *testing.T) {
	// Two requesters (H and I) both route through D toward A. D's
	// capacity is shared: 50 units serve H's 30 (processed first, lower
	// id H < I... actually H=7, I=8 in id order) then 20 of I's 30.
	pr, r := paperProp(t)
	h, i, d, a := dc(t, r, "H"), dc(t, r, "I"), dc(t, r, "D"), dc(t, r, "A")
	queries := make([]int, 10)
	capacity := make([]int, 10)
	queries[h] = 30
	queries[i] = 30
	capacity[d] = 50
	res, err := pr.Propagate(a, queries, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedByDC[d] != 50 {
		t.Fatalf("served at D = %d, want 50", res.ServedByDC[d])
	}
	if res.Unserved != 10 {
		t.Fatalf("unserved = %d, want 10", res.Unserved)
	}
	_ = h
	_ = i
}

func TestPropagateConservation(t *testing.T) {
	// Property: served + unserved = total queries, for random demand and
	// capacity.
	pr, r := paperProp(t)
	holderDC := dc(t, r, "A")
	check := func(qs, cs [10]uint8) bool {
		queries := make([]int, 10)
		capacity := make([]int, 10)
		for i := 0; i < 10; i++ {
			queries[i] = int(qs[i])
			capacity[i] = int(cs[i]) / 2
		}
		res, err := pr.Propagate(holderDC, queries, capacity)
		if err != nil {
			return false
		}
		served := 0
		for _, s := range res.ServedByDC {
			served += s
		}
		total := 0
		for _, q := range queries {
			total += q
		}
		if served+res.Unserved != total || res.TotalQueries != total {
			return false
		}
		// Served at a DC never exceeds its capacity.
		for d2, s := range res.ServedByDC {
			if s > capacity[d2] {
				return false
			}
		}
		// Traffic at the requester itself includes its own demand.
		for d2, q := range queries {
			if res.TrafficByDC[d2] < q {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropagateResultReused(t *testing.T) {
	pr, r := paperProp(t)
	a := dc(t, r, "A")
	queries := make([]int, 10)
	queries[dc(t, r, "H")] = 10
	res1, _ := pr.Propagate(a, queries, make([]int, 10))
	first := res1.Unserved
	queries[dc(t, r, "H")] = 0
	res2, _ := pr.Propagate(a, queries, make([]int, 10))
	if res2.Unserved != 0 {
		t.Fatal("stale state leaked between calls")
	}
	if res1 != res2 {
		t.Fatal("propagator should reuse its result buffer")
	}
	_ = first
}

func TestMeanPathLength(t *testing.T) {
	r := &ServeResult{HopsSum: 30, TotalQueries: 10}
	if got := r.MeanPathLength(); got != 3 {
		t.Fatalf("mean path = %g", got)
	}
	empty := &ServeResult{}
	if got := empty.MeanPathLength(); got != 0 {
		t.Fatalf("empty mean path = %g", got)
	}
}

func TestPropagateHolderIsRequester(t *testing.T) {
	// Queries from the holder's own DC with holder capacity: 0 hops.
	pr, r := paperProp(t)
	a := dc(t, r, "A")
	queries := make([]int, 10)
	capacity := make([]int, 10)
	queries[a] = 20
	capacity[a] = 100
	res, err := pr.Propagate(a, queries, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedByDC[a] != 20 || res.HopsSum != 0 || res.Unserved != 0 {
		t.Fatalf("holder-local serving wrong: %+v", res)
	}
}
