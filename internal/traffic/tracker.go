package traffic

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/topology"
)

// Thresholds carries the decision constants of Table I.
//
// Alpha is interpreted as the weight of the NEW observation:
// smoothed = (1−α)·history + α·current. The paper prints eq. (10) with
// the weights the other way around, but with 80% weight on the current
// sample the average would barely "compensate for steep changes of the
// query rate" as §II-C intends; the α = 0.2 of Table I only acts as a
// stabiliser under this reading (≈5-epoch time constant), which also
// reproduces the multi-epoch adaptation transients of Figs. 3(b) and 9.
type Thresholds struct {
	Alpha float64 // EWMA new-sample weight of eqs. (10)–(11), Table I: 0.2
	Beta  float64 // holder overload multiplier of eq. (12), Table I: 2
	Gamma float64 // traffic-hub multiplier of eq. (13), Table I: 1.5
	Delta float64 // cold-replica multiplier of eq. (15), Table I: 0.2
	Mu    float64 // migration benefit multiplier of eq. (16), Table I: 1
}

// DefaultThresholds returns the Table I constants.
func DefaultThresholds() Thresholds {
	return Thresholds{Alpha: 0.2, Beta: 2, Gamma: 1.5, Delta: 0.2, Mu: 1}
}

// Validate checks the constants against the paper's stated domains
// (0 < α < 1, β > 1, γ > 1, 0 < δ < 1, μ > 0).
func (th Thresholds) Validate() error {
	switch {
	case th.Alpha <= 0 || th.Alpha >= 1:
		return fmt.Errorf("traffic: alpha %g outside (0,1)", th.Alpha)
	case th.Beta <= 1:
		return fmt.Errorf("traffic: beta %g must exceed 1", th.Beta)
	case th.Gamma <= 1:
		return fmt.Errorf("traffic: gamma %g must exceed 1", th.Gamma)
	case th.Delta <= 0 || th.Delta >= 1:
		return fmt.Errorf("traffic: delta %g outside (0,1)", th.Delta)
	case th.Mu <= 0:
		return fmt.Errorf("traffic: mu %g must be positive", th.Mu)
	}
	return nil
}

// Tracker maintains smoothed per-(partition, datacenter) traffic and
// per-partition average query rate across epochs, and evaluates the
// paper's threshold conditions. One Tracker serves the whole
// simulation; feed it each epoch's ServeResults then call EndEpoch.
type Tracker struct {
	partitions int
	dcs        int
	th         Thresholds

	rawTraffic  [][]float64 // current epoch arrivals, [partition][dc]
	smoothed    [][]float64 // eq. (11) smoothed traffic
	rawLoad     [][]float64 // current epoch served load, [partition][dc]
	smoothLoad  [][]float64 // smoothed served load
	rawQuery    []float64   // current epoch total queries per partition
	avgQuery    []float64   // eq. (10) smoothed system average query
	rawUnserved []float64   // current epoch overflow per partition
	unserved    []float64   // smoothed overflow per partition
	started     bool
}

// NewTracker creates a tracker for the given dimensions and thresholds.
func NewTracker(partitions, dcs int, th Thresholds) (*Tracker, error) {
	if partitions <= 0 || dcs <= 0 {
		return nil, fmt.Errorf("traffic: dimensions (%d,%d) must be positive", partitions, dcs)
	}
	if err := th.Validate(); err != nil {
		return nil, err
	}
	t := &Tracker{
		partitions:  partitions,
		dcs:         dcs,
		th:          th,
		rawTraffic:  make([][]float64, partitions),
		smoothed:    make([][]float64, partitions),
		rawLoad:     make([][]float64, partitions),
		smoothLoad:  make([][]float64, partitions),
		rawQuery:    make([]float64, partitions),
		avgQuery:    make([]float64, partitions),
		rawUnserved: make([]float64, partitions),
		unserved:    make([]float64, partitions),
	}
	for p := 0; p < partitions; p++ {
		t.rawTraffic[p] = make([]float64, dcs)
		t.smoothed[p] = make([]float64, dcs)
		t.rawLoad[p] = make([]float64, dcs)
		t.smoothLoad[p] = make([]float64, dcs)
	}
	return t, nil
}

// Thresholds returns the tracker's decision constants.
func (t *Tracker) Thresholds() Thresholds { return t.th }

// BeginEpoch clears the current epoch's raw accumulators.
func (t *Tracker) BeginEpoch() {
	for p := 0; p < t.partitions; p++ {
		t.rawQuery[p] = 0
		t.rawUnserved[p] = 0
		for d := 0; d < t.dcs; d++ {
			t.rawTraffic[p][d] = 0
			t.rawLoad[p][d] = 0
		}
	}
}

// Observe folds one partition's propagation result into the epoch.
// holder is the partition's primary datacenter; unserved overflow
// counts toward the holder's load (it arrived there and was refused).
func (t *Tracker) Observe(partition int, holder topology.DCID, res *ServeResult) {
	t.rawQuery[partition] += float64(res.TotalQueries)
	for d, tr := range res.TrafficByDC {
		t.rawTraffic[partition][d] += float64(tr)
	}
	for d, s := range res.ServedByDC {
		t.rawLoad[partition][d] += float64(s)
	}
	t.rawLoad[partition][holder] += float64(res.Unserved)
	t.rawUnserved[partition] += float64(res.Unserved)
}

// EndEpoch folds the epoch's raw observations into the smoothed state
// per eqs. (10) and (11). The first epoch initialises the averages.
func (t *Tracker) EndEpoch() {
	for p := 0; p < t.partitions; p++ {
		// eq. (9): system average query per requester.
		q := t.rawQuery[p] / float64(t.dcs)
		if !t.started {
			t.avgQuery[p] = q
			t.unserved[p] = t.rawUnserved[p]
		} else {
			t.avgQuery[p] = stats.Smooth(1-t.th.Alpha, t.avgQuery[p], q)
			t.unserved[p] = stats.Smooth(1-t.th.Alpha, t.unserved[p], t.rawUnserved[p])
		}
		for d := 0; d < t.dcs; d++ {
			if !t.started {
				t.smoothed[p][d] = t.rawTraffic[p][d]
				t.smoothLoad[p][d] = t.rawLoad[p][d]
			} else {
				t.smoothed[p][d] = stats.Smooth(1-t.th.Alpha, t.smoothed[p][d], t.rawTraffic[p][d])
				t.smoothLoad[p][d] = stats.Smooth(1-t.th.Alpha, t.smoothLoad[p][d], t.rawLoad[p][d])
			}
		}
	}
	t.started = true
}

// Traffic returns the smoothed traffic tr̄_ikt of partition p at
// datacenter d.
func (t *Tracker) Traffic(p int, d topology.DCID) float64 {
	return t.smoothed[p][d]
}

// AvgQuery returns the smoothed system average query q̄_it for
// partition p (eqs. 9–10).
func (t *Tracker) AvgQuery(p int) float64 { return t.avgQuery[p] }

// Unserved returns the smoothed per-epoch overflow of partition p —
// queries that found no replica capacity anywhere. Positive values mean
// the partition's aggregate capacity genuinely falls short of demand.
func (t *Tracker) Unserved(p int) float64 { return t.unserved[p] }

// LastUnserved returns the most recently observed epoch's raw overflow
// for partition p (policies run after EndEpoch, so at decision time
// this is the current epoch's overflow). Policies gate capacity-
// shortage reactions on both the smoothed and the raw value:
// smoothed-only would keep reacting for many epochs after a shortage
// is fixed, raw-only would chase single Poisson spikes.
func (t *Tracker) LastUnserved(p int) float64 { return t.rawUnserved[p] }

// MeanTraffic returns t̄r_i of eq. (17): the partition's traffic
// averaged over all datacenters.
func (t *Tracker) MeanTraffic(p int) float64 {
	sum := 0.0
	for d := 0; d < t.dcs; d++ {
		sum += t.smoothed[p][d]
	}
	return sum / float64(t.dcs)
}

// Load returns the smoothed served load (including refused overflow at
// the holder) of partition p at datacenter d. Unlike Traffic, Load
// excludes pass-through: it is the work the datacenter's replicas
// actually did.
func (t *Tracker) Load(p int, d topology.DCID) float64 {
	return t.smoothLoad[p][d]
}

// TotalLoad returns the partition's smoothed served load summed over
// all datacenters (including refused overflow at the holder) — the
// total work the partition's replicas are asked to do per epoch.
func (t *Tracker) TotalLoad(p int) float64 {
	sum := 0.0
	for d := 0; d < t.dcs; d++ {
		sum += t.smoothLoad[p][d]
	}
	return sum
}

// HolderOverloaded evaluates eq. (12) at virtual-node granularity: the
// partition's total served load (including refused overflow), shared
// among its copies, exceeds β times the system average query per node.
// This is the paper's "if a hot partition and its replicas receive too
// many requests at a time, they could become overloaded" — each copy's
// share of the demand is what overloads it, not pass-through
// forwarding.
func (t *Tracker) HolderOverloaded(p int, copies int) bool {
	if copies < 1 {
		copies = 1
	}
	perNode := t.TotalLoad(p) / float64(copies)
	return perNode >= t.th.Beta*t.avgQuery[p] && t.avgQuery[p] > 0
}

// PressureAfterRemoval returns the per-copy load the partition would
// carry with one copy fewer — the RFH suicide guard uses it to avoid
// oscillating between suicide and re-replication.
func (t *Tracker) PressureAfterRemoval(p, copies int) float64 {
	if copies <= 1 {
		return t.TotalLoad(p)
	}
	return t.TotalLoad(p) / float64(copies-1)
}

// OverloadThreshold returns β·q̄ for the partition, the eq. (12) right-
// hand side.
func (t *Tracker) OverloadThreshold(p int) float64 {
	return t.th.Beta * t.avgQuery[p]
}

// IsHub evaluates eq. (13): a forwarding datacenter whose traffic
// exceeds γ times the system average query is a traffic hub.
func (t *Tracker) IsHub(p int, d topology.DCID) bool {
	return t.smoothed[p][d] >= t.th.Gamma*t.avgQuery[p] && t.avgQuery[p] > 0
}

// IsCold evaluates eq. (15): a replica whose datacenter serves no more
// than δ times the system average query is a suicide candidate. Load is
// used rather than pass-through traffic — a replica on a busy transit
// datacenter that serves nothing is still dead weight.
func (t *Tracker) IsCold(p int, d topology.DCID) bool {
	return t.smoothLoad[p][d] <= t.th.Delta*t.avgQuery[p]
}

// MigrationBeneficial evaluates eq. (16): moving partition p's replica
// from datacenter `from` to hub `to` is worthwhile when the traffic
// difference exceeds μ times the partition's mean traffic (eq. 17).
func (t *Tracker) MigrationBeneficial(p int, from, to topology.DCID) bool {
	return t.smoothed[p][to]-t.smoothed[p][from] >= t.th.Mu*t.MeanTraffic(p)
}

// RankedHub is one entry of TopHubs: a datacenter and its smoothed
// traffic for the partition.
type RankedHub struct {
	DC      topology.DCID
	Traffic float64
}

// TopHubs returns up to k forwarding datacenters that satisfy the hub
// condition (13) for partition p, ordered by descending traffic (ties
// broken by ascending id). Datacenters in `exclude` (e.g. the holder)
// are skipped. The paper fixes k = 3: "it will choose a node among the
// 3 nodes with the largest amount of traffic."
func (t *Tracker) TopHubs(p, k int, exclude map[topology.DCID]bool) []RankedHub {
	if k <= 0 {
		return nil
	}
	// Bounded selection instead of sort-then-truncate: k is tiny (the
	// paper fixes 3) while the DC count can be large, and this runs once
	// per partition per epoch. Candidates arrive in ascending id order,
	// so a strictly-greater comparison preserves the ascending-id tie
	// break of the sorted formulation.
	hubs := make([]RankedHub, 0, k)
	for d := 0; d < t.dcs; d++ {
		dc := topology.DCID(d)
		if exclude[dc] || !t.IsHub(p, dc) {
			continue
		}
		h := RankedHub{DC: dc, Traffic: t.smoothed[p][d]}
		if len(hubs) < k {
			hubs = append(hubs, h)
		} else if h.Traffic > hubs[k-1].Traffic {
			hubs[k-1] = h
		} else {
			continue
		}
		for i := len(hubs) - 1; i > 0 && hubs[i].Traffic > hubs[i-1].Traffic; i-- {
			hubs[i], hubs[i-1] = hubs[i-1], hubs[i]
		}
	}
	return hubs
}
