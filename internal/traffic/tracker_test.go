package traffic

import (
	"math"
	"testing"

	"repro/internal/topology"
)

func newTracker(t *testing.T) *Tracker {
	t.Helper()
	tr, err := NewTracker(4, 10, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// observeEpoch records one epoch where each datacenter both forwards
// and serves the given per-DC amounts (traffic == load), the common
// case in these unit tests. Holder is DC 0.
func observeEpoch(tr *Tracker, p int, traffic []int, total int) {
	tr.BeginEpoch()
	res := &ServeResult{TrafficByDC: traffic, ServedByDC: traffic, TotalQueries: total}
	tr.Observe(p, 0, res)
	tr.EndEpoch()
}

// observeSplit records one epoch with distinct forwarding traffic and
// served load vectors.
func observeSplit(tr *Tracker, p int, holder int, traffic, served []int, unserved, total int) {
	tr.BeginEpoch()
	res := &ServeResult{TrafficByDC: traffic, ServedByDC: served, Unserved: unserved, TotalQueries: total}
	tr.Observe(p, topology.DCID(holder), res)
	tr.EndEpoch()
}

func TestDefaultThresholdsMatchTableI(t *testing.T) {
	th := DefaultThresholds()
	if th.Alpha != 0.2 || th.Beta != 2 || th.Gamma != 1.5 || th.Delta != 0.2 || th.Mu != 1 {
		t.Fatalf("thresholds = %+v", th)
	}
	if err := th.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestThresholdValidation(t *testing.T) {
	muts := []func(*Thresholds){
		func(th *Thresholds) { th.Alpha = 0 },
		func(th *Thresholds) { th.Alpha = 1 },
		func(th *Thresholds) { th.Beta = 1 },
		func(th *Thresholds) { th.Gamma = 0.5 },
		func(th *Thresholds) { th.Delta = 0 },
		func(th *Thresholds) { th.Delta = 1 },
		func(th *Thresholds) { th.Mu = 0 },
	}
	for i, mut := range muts {
		th := DefaultThresholds()
		mut(&th)
		if err := th.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestNewTrackerValidation(t *testing.T) {
	if _, err := NewTracker(0, 10, DefaultThresholds()); err == nil {
		t.Fatal("zero partitions accepted")
	}
	if _, err := NewTracker(4, 0, DefaultThresholds()); err == nil {
		t.Fatal("zero DCs accepted")
	}
	bad := DefaultThresholds()
	bad.Beta = 0
	if _, err := NewTracker(4, 10, bad); err == nil {
		t.Fatal("bad thresholds accepted")
	}
}

func TestFirstEpochInitialises(t *testing.T) {
	tr := newTracker(t)
	traffic := make([]int, 10)
	traffic[3] = 500
	observeEpoch(tr, 0, traffic, 500)
	if got := tr.Traffic(0, 3); got != 500 {
		t.Fatalf("first epoch traffic = %g, want 500 (no smoothing)", got)
	}
	// eq. (9): average query = 500 / 10 DCs = 50.
	if got := tr.AvgQuery(0); got != 50 {
		t.Fatalf("avg query = %g, want 50", got)
	}
}

func TestSmoothingFollowsEq10(t *testing.T) {
	tr := newTracker(t)
	traffic := make([]int, 10)
	traffic[3] = 100
	observeEpoch(tr, 0, traffic, 100)
	traffic[3] = 200
	observeEpoch(tr, 0, traffic, 200)
	// eq. (11) with α as new-sample weight: 0.8*100 + 0.2*200 = 120.
	if got := tr.Traffic(0, 3); math.Abs(got-120) > 1e-9 {
		t.Fatalf("smoothed traffic = %g, want 120", got)
	}
	// eq. (10): 0.8*10 + 0.2*20 = 12.
	if got := tr.AvgQuery(0); math.Abs(got-12) > 1e-9 {
		t.Fatalf("smoothed avg query = %g, want 12", got)
	}
}

func TestHolderOverloadedEq12(t *testing.T) {
	tr := newTracker(t)
	traffic := make([]int, 10)
	traffic[0] = 300 // holder sees all 300; avg query = 30; beta=2 → 60.
	observeEpoch(tr, 0, traffic, 300)
	if !tr.HolderOverloaded(0, 1) {
		t.Fatal("holder with 300 traffic vs 30 avg not overloaded")
	}
	// A holder with traffic below β·q̄ is fine.
	tr2 := newTracker(t)
	traffic2 := make([]int, 10)
	traffic2[0] = 40
	observeEpoch(tr2, 0, traffic2, 300)
	if tr2.HolderOverloaded(0, 1) {
		t.Fatal("holder with 40 traffic vs 60 threshold reported overloaded")
	}
}

func TestNoQueriesNoOverload(t *testing.T) {
	tr := newTracker(t)
	observeEpoch(tr, 0, make([]int, 10), 0)
	if tr.HolderOverloaded(0, 1) || tr.IsHub(0, 1) {
		t.Fatal("zero-query epoch triggered thresholds")
	}
	if !tr.IsCold(0, 1) {
		t.Fatal("zero traffic should be cold")
	}
}

func TestIsHubEq13(t *testing.T) {
	tr := newTracker(t)
	traffic := make([]int, 10)
	traffic[4] = 100 // avg query = 30; gamma=1.5 → threshold 45
	traffic[5] = 40
	observeEpoch(tr, 0, traffic, 300)
	if !tr.IsHub(0, 4) {
		t.Fatal("DC 4 at 100 vs 45 threshold not a hub")
	}
	if tr.IsHub(0, 5) {
		t.Fatal("DC 5 at 40 vs 45 threshold is a hub")
	}
}

func TestIsColdEq15(t *testing.T) {
	tr := newTracker(t)
	traffic := make([]int, 10)
	traffic[2] = 5  // avg query 30, delta 0.2 → threshold 6
	traffic[3] = 10 // above threshold
	observeEpoch(tr, 0, traffic, 300)
	if !tr.IsCold(0, 2) {
		t.Fatal("DC 2 at 5 vs 6 not cold")
	}
	if tr.IsCold(0, 3) {
		t.Fatal("DC 3 at 10 vs 6 cold")
	}
}

func TestMeanTrafficEq17(t *testing.T) {
	tr := newTracker(t)
	traffic := make([]int, 10)
	traffic[0], traffic[1] = 70, 30
	observeEpoch(tr, 0, traffic, 100)
	if got := tr.MeanTraffic(0); math.Abs(got-10) > 1e-9 {
		t.Fatalf("mean traffic = %g, want 10", got)
	}
}

func TestMigrationBeneficialEq16(t *testing.T) {
	tr := newTracker(t)
	traffic := make([]int, 10)
	traffic[1], traffic[2] = 100, 5 // mean = 10.5, mu = 1
	observeEpoch(tr, 0, traffic, 100)
	if !tr.MigrationBeneficial(0, 2, 1) {
		t.Fatal("95 > 10.5 benefit rejected")
	}
	if tr.MigrationBeneficial(0, 1, 2) {
		t.Fatal("negative benefit accepted")
	}
}

func TestTopHubsRankingAndExclusion(t *testing.T) {
	tr := newTracker(t)
	traffic := make([]int, 10)
	traffic[1], traffic[2], traffic[3], traffic[4] = 100, 90, 80, 70
	observeEpoch(tr, 0, traffic, 300) // avg 30, hub threshold 45
	hubs := tr.TopHubs(0, 3, nil)
	if len(hubs) != 3 {
		t.Fatalf("hubs = %v", hubs)
	}
	if hubs[0].DC != 1 || hubs[1].DC != 2 || hubs[2].DC != 3 {
		t.Fatalf("hub order wrong: %v", hubs)
	}
	// Excluding the top hub pulls DC 4 (70 ≥ 45) into the top 3.
	hubs = tr.TopHubs(0, 3, map[topology.DCID]bool{1: true})
	if len(hubs) != 3 || hubs[0].DC != 2 || hubs[2].DC != 4 {
		t.Fatalf("hubs with exclusion = %v", hubs)
	}
	if got := tr.TopHubs(0, 0, nil); got != nil {
		t.Fatal("k=0 returned hubs")
	}
}

func TestTopHubsOnlyAboveThreshold(t *testing.T) {
	tr := newTracker(t)
	traffic := make([]int, 10)
	traffic[1], traffic[2] = 100, 10 // threshold 45: only DC 1 qualifies
	observeEpoch(tr, 0, traffic, 300)
	hubs := tr.TopHubs(0, 3, nil)
	if len(hubs) != 1 || hubs[0].DC != 1 {
		t.Fatalf("hubs = %v", hubs)
	}
}

func TestTopHubsTieBreakByID(t *testing.T) {
	tr := newTracker(t)
	traffic := make([]int, 10)
	traffic[5], traffic[2] = 100, 100
	observeEpoch(tr, 0, traffic, 300)
	hubs := tr.TopHubs(0, 2, nil)
	if len(hubs) != 2 || hubs[0].DC != 2 || hubs[1].DC != 5 {
		t.Fatalf("tie break wrong: %v", hubs)
	}
}

func TestPartitionsIndependent(t *testing.T) {
	tr := newTracker(t)
	traffic := make([]int, 10)
	traffic[1] = 100
	tr.BeginEpoch()
	tr.Observe(0, 0, &ServeResult{TrafficByDC: traffic, ServedByDC: traffic, TotalQueries: 100})
	tr.EndEpoch()
	if tr.Traffic(1, 1) != 0 || tr.AvgQuery(1) != 0 {
		t.Fatal("partition 1 contaminated by partition 0's observations")
	}
}

func TestLoadVsTrafficSeparation(t *testing.T) {
	// A transit DC with heavy pass-through but zero serving must be a
	// hub (γ on traffic) yet cold (δ on load); the holder's overload is
	// judged on load, not pass-through.
	tr := newTracker(t)
	traffic := make([]int, 10)
	served := make([]int, 10)
	traffic[0] = 250 // holder forwards a lot...
	served[0] = 20   // ...but serves little
	traffic[4] = 200 // transit hub, serves nothing
	observeSplit(tr, 0, 0, traffic, served, 0, 300)
	if tr.HolderOverloaded(0, 1) {
		t.Fatal("holder serving 20 vs threshold 60 reported overloaded")
	}
	if !tr.IsHub(0, 4) {
		t.Fatal("transit DC with 200 pass-through not a hub")
	}
	if !tr.IsCold(0, 4) {
		t.Fatal("replica serving nothing on a transit DC not cold")
	}
	if got := tr.Load(0, 0); got != 20 {
		t.Fatalf("holder load = %g, want 20", got)
	}
}

func TestUnservedCountsAsHolderLoad(t *testing.T) {
	tr := newTracker(t)
	traffic := make([]int, 10)
	served := make([]int, 10)
	traffic[0] = 300
	served[0] = 50
	observeSplit(tr, 0, 0, traffic, served, 100, 300)
	// Load at holder = 50 served + 100 refused = 150 ≥ 2·30.
	if !tr.HolderOverloaded(0, 1) {
		t.Fatal("holder refusing 100 queries not overloaded")
	}
}

func TestBeginEpochClearsRaw(t *testing.T) {
	tr := newTracker(t)
	traffic := make([]int, 10)
	traffic[1] = 100
	observeEpoch(tr, 0, traffic, 100)
	// Epoch with no observations: smoothed decays toward 0.
	tr.BeginEpoch()
	tr.EndEpoch()
	want := 0.8 * 100.0
	if got := tr.Traffic(0, 1); math.Abs(got-want) > 1e-9 {
		t.Fatalf("after empty epoch traffic = %g, want %g", got, want)
	}
}
