package transport

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Message is the wire unit of the node protocol. The fields are
// generic routing/payload slots; the node layer assigns meaning to
// Kind values and payload encodings. The zero value is a valid
// (empty) message.
type Message struct {
	// Kind discriminates the request/response type (node protocol).
	Kind uint8
	// Status is 0 (StatusOK) on requests and successful responses;
	// non-zero responses carry an application error class.
	Status uint8
	// Partition addresses one data partition where relevant.
	Partition uint32
	// Origin is the datacenter index a routed request entered the
	// cluster at; forwarding preserves it for traffic accounting.
	Origin uint32
	// Hops counts transport-level forwards of a routed request.
	Hops uint32
	// Epoch tags epoch-scoped messages (stats exchange, ticks).
	Epoch uint64
	// Version is the data-plane version number of the carried write:
	// the per-key version a primary stamped on a Put, propagated on
	// sync and snapshot traffic and echoed on read replies so quorum
	// reads can rank divergent copies. Zero means "no version" (control
	// messages, legacy unversioned values).
	Version uint64
	// Session identifies a multi-message transfer session (chunked
	// replica transfers). Zero means "no session".
	Session uint64
	// Cursor is the session resume position: on chunks it is the chunk
	// index being carried, on acks the next chunk the receiver wants.
	Cursor uint64
	// Key and Value are the payload slots. Either may be nil.
	Key   []byte
	Value []byte
}

// Response status classes. The node protocol maps its own error
// conditions onto these; the transport itself only produces
// StatusError (for handler failures and missing handlers).
const (
	StatusOK       uint8 = 0
	StatusError    uint8 = 1 // handler failed; Value holds the error text
	StatusNotFound uint8 = 2
	StatusRetry    uint8 = 3 // transient condition, safe to retry
)

// Err converts a non-OK response into an error (nil for StatusOK).
func (m *Message) Err() error {
	switch m.Status {
	case StatusOK, StatusNotFound:
		return nil
	default:
		return fmt.Errorf("transport: remote status %d: %s", m.Status, m.Value)
	}
}

// MaxFrame is the largest encoded message a conforming endpoint
// accepts: 16 MiB comfortably holds a full partition transfer at the
// Table I partition size while bounding a malicious or corrupt
// length prefix.
const MaxFrame = 16 << 20

// FrameVersion is the wire frame format this package speaks. Version 1
// was the unversioned 4-byte length prefix of the serialized transport
// (one exchange in flight per connection); version 2 added the frame
// type and correlation ID that request multiplexing needs; version 3
// inserts the data-plane Version field into the message body (between
// epoch and key), so v2 bodies no longer parse and mixing binaries
// across the change fails loudly at the header instead of silently
// misreading payloads; version 4 inserts the Session and Cursor fields
// (between version and key) that chunked transfer sessions ride on;
// version 5 leaves the frame layout untouched and marks the
// protocol-vocabulary extension that added the anti-entropy kinds
// (digest and repair frames) — a binary without their handlers must
// refuse the stream at the header rather than StatusError every
// digest round. A v1 frame shorter than 16 MiB always starts with a
// 0x00 byte, so this decoder reads it as "version 0" and rejects it
// cleanly rather than misparsing the stream.
const FrameVersion = 5

// Frame types: every frame is either a request (carrying a correlation
// ID the responder must echo) or the response bearing that ID.
const (
	FrameRequest  uint8 = 0
	FrameResponse uint8 = 1
)

// frameHeaderLen is the byte length of the v2 frame header:
// version(1) + type(1) + correlation id(8, big-endian) + body
// length(4, big-endian).
const frameHeaderLen = 14

// AppendMessage appends the encoded message body (no frame header) to
// dst and returns the extended slice. Layout: kind, status, then
// uvarint partition/origin/hops/epoch/version/session/cursor, then
// length-prefixed key and value.
func AppendMessage(dst []byte, m *Message) []byte {
	dst = append(dst, m.Kind, m.Status)
	dst = binary.AppendUvarint(dst, uint64(m.Partition))
	dst = binary.AppendUvarint(dst, uint64(m.Origin))
	dst = binary.AppendUvarint(dst, uint64(m.Hops))
	dst = binary.AppendUvarint(dst, m.Epoch)
	dst = binary.AppendUvarint(dst, m.Version)
	dst = binary.AppendUvarint(dst, m.Session)
	dst = binary.AppendUvarint(dst, m.Cursor)
	dst = binary.AppendUvarint(dst, uint64(len(m.Key)))
	dst = append(dst, m.Key...)
	dst = binary.AppendUvarint(dst, uint64(len(m.Value)))
	dst = append(dst, m.Value...)
	return dst
}

// DecodeMessage parses an encoded message body. The returned message
// aliases buf's key/value bytes; callers that retain them across
// buffer reuse must copy.
func DecodeMessage(buf []byte) (*Message, error) {
	m := &Message{}
	if err := DecodeMessageInto(m, buf); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeMessageInto parses an encoded message body into m, the
// allocation-free variant of DecodeMessage for hot paths that reuse a
// Message. Every field of m is overwritten; Key/Value alias buf.
func DecodeMessageInto(m *Message, buf []byte) error {
	if len(buf) < 2 {
		return fmt.Errorf("transport: message truncated at header (%d bytes)", len(buf))
	}
	m.Kind, m.Status = buf[0], buf[1]
	rest := buf[2:]
	var err error
	if m.Partition, rest, err = takeUint32(rest, "partition"); err != nil {
		return err
	}
	if m.Origin, rest, err = takeUint32(rest, "origin"); err != nil {
		return err
	}
	if m.Hops, rest, err = takeUint32(rest, "hops"); err != nil {
		return err
	}
	if m.Epoch, rest, err = takeUvarint(rest, "epoch"); err != nil {
		return err
	}
	if m.Version, rest, err = takeUvarint(rest, "version"); err != nil {
		return err
	}
	if m.Session, rest, err = takeUvarint(rest, "session"); err != nil {
		return err
	}
	if m.Cursor, rest, err = takeUvarint(rest, "cursor"); err != nil {
		return err
	}
	if m.Key, rest, err = takeBytes(rest, "key"); err != nil {
		return err
	}
	if m.Value, rest, err = takeBytes(rest, "value"); err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("transport: %d trailing bytes after message", len(rest))
	}
	return nil
}

func takeUvarint(buf []byte, field string) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("transport: bad uvarint in %s field", field)
	}
	// Reject overlong (non-minimal) encodings: a minimal uvarint never
	// ends in a zero byte except the single-byte encoding of zero.
	// Accepting them would let two different byte strings decode to the
	// same message, breaking the bit-identical wire contract.
	if n > 1 && buf[n-1] == 0 {
		return 0, nil, fmt.Errorf("transport: overlong uvarint in %s field", field)
	}
	return v, buf[n:], nil
}

// takeUint32 decodes a uvarint bound for a 32-bit field, rejecting
// values that would silently truncate (a corrupt or non-canonical
// encoding must not decode into a message that re-encodes
// differently).
func takeUint32(buf []byte, field string) (uint32, []byte, error) {
	v, rest, err := takeUvarint(buf, field)
	if err != nil {
		return 0, nil, err
	}
	if v > 1<<32-1 {
		return 0, nil, fmt.Errorf("transport: %s value %d overflows uint32", field, v)
	}
	return uint32(v), rest, nil
}

func takeBytes(buf []byte, field string) ([]byte, []byte, error) {
	n, rest, err := takeUvarint(buf, field)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("transport: %s length %d exceeds remaining %d bytes", field, n, len(rest))
	}
	if n == 0 {
		return nil, rest, nil
	}
	return rest[:n], rest[n:], nil
}

// errFrameSize marks a message too large to frame. Send treats it as
// permanent: retrying cannot shrink the payload.
var errFrameSize = fmt.Errorf("transport: frame exceeds MaxFrame %d", MaxFrame)

// AppendFrame appends one complete v2 frame (header + encoded message
// body) to dst and returns the extended slice. ftype is FrameRequest
// or FrameResponse; id is the correlation ID a response must echo.
func AppendFrame(dst []byte, ftype uint8, id uint64, m *Message) ([]byte, error) {
	start := len(dst)
	dst = append(dst, make([]byte, frameHeaderLen)...)
	dst = AppendMessage(dst, m)
	n := len(dst) - start - frameHeaderLen
	if n > MaxFrame {
		return dst[:start], errFrameSize
	}
	hdr := dst[start : start+frameHeaderLen]
	hdr[0] = FrameVersion
	hdr[1] = ftype
	binary.BigEndian.PutUint64(hdr[2:10], id)
	binary.BigEndian.PutUint32(hdr[10:14], uint32(n))
	return dst, nil
}

// parseFrameHeader validates a v2 frame header and returns its fields.
// It rejects unknown versions (including v1 frames, whose length
// prefix reads as version 0 here), unknown frame types, and body
// lengths over MaxFrame — all before any body byte is read, so a
// corrupt header cannot trigger a giant allocation.
func parseFrameHeader(hdr []byte) (ftype uint8, id uint64, n uint32, err error) {
	if hdr[0] != FrameVersion {
		return 0, 0, 0, fmt.Errorf("transport: unsupported frame version %d (this endpoint speaks v%d)", hdr[0], FrameVersion)
	}
	if hdr[1] != FrameRequest && hdr[1] != FrameResponse {
		return 0, 0, 0, fmt.Errorf("transport: unknown frame type %d", hdr[1])
	}
	n = binary.BigEndian.Uint32(hdr[10:14])
	if n > MaxFrame {
		return 0, 0, 0, fmt.Errorf("transport: frame length %d exceeds MaxFrame %d", n, MaxFrame)
	}
	return hdr[1], binary.BigEndian.Uint64(hdr[2:10]), n, nil
}

// DecodeFrame parses one complete v2 frame from buf. The returned
// message aliases buf; trailing bytes after the frame are rejected so
// accepted frames re-encode byte-identically.
func DecodeFrame(buf []byte) (ftype uint8, id uint64, m *Message, err error) {
	if len(buf) < frameHeaderLen {
		return 0, 0, nil, fmt.Errorf("transport: frame truncated at header (%d bytes)", len(buf))
	}
	ftype, id, n, err := parseFrameHeader(buf[:frameHeaderLen])
	if err != nil {
		return 0, 0, nil, err
	}
	body := buf[frameHeaderLen:]
	if uint64(len(body)) != uint64(n) {
		return 0, 0, nil, fmt.Errorf("transport: frame body is %d bytes, header says %d", len(body), n)
	}
	m, err = DecodeMessage(body)
	if err != nil {
		return 0, 0, nil, err
	}
	return ftype, id, m, nil
}

// bufPool recycles codec scratch buffers so the steady-state encode
// path allocates nothing. Ownership rule: a pooled buffer may back
// request-direction bytes only (frames in flight, decoded request
// key/value handed to a handler for the duration of the call) —
// response bodies returned to Send callers are always freshly
// allocated, because callers own them indefinitely.
var bufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

func getBuf() *[]byte {
	return bufPool.Get().(*[]byte)
}

// putBuf returns a scratch buffer to the pool. Buffers that grew past
// a full partition-sized transfer are dropped so one giant frame does
// not pin its capacity forever.
func putBuf(b *[]byte) {
	if cap(*b) > 1<<20 {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// msgPool recycles Message structs for the request direction, under
// the same ownership rule as bufPool.
var msgPool = sync.Pool{
	New: func() any { return new(Message) },
}

func getMsg() *Message { return msgPool.Get().(*Message) }

func putMsg(m *Message) {
	*m = Message{}
	msgPool.Put(m)
}

// errorReply wraps a handler failure as a StatusError response so the
// sender sees the failure text instead of a dropped connection.
func errorReply(req *Message, err error) *Message {
	return &Message{Kind: req.Kind, Status: StatusError, Value: []byte(err.Error())}
}
