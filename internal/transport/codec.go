package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Message is the wire unit of the node protocol. The fields are
// generic routing/payload slots; the node layer assigns meaning to
// Kind values and payload encodings. The zero value is a valid
// (empty) message.
type Message struct {
	// Kind discriminates the request/response type (node protocol).
	Kind uint8
	// Status is 0 (StatusOK) on requests and successful responses;
	// non-zero responses carry an application error class.
	Status uint8
	// Partition addresses one data partition where relevant.
	Partition uint32
	// Origin is the datacenter index a routed request entered the
	// cluster at; forwarding preserves it for traffic accounting.
	Origin uint32
	// Hops counts transport-level forwards of a routed request.
	Hops uint32
	// Epoch tags epoch-scoped messages (stats exchange, ticks).
	Epoch uint64
	// Key and Value are the payload slots. Either may be nil.
	Key   []byte
	Value []byte
}

// Response status classes. The node protocol maps its own error
// conditions onto these; the transport itself only produces
// StatusError (for handler failures and missing handlers).
const (
	StatusOK       uint8 = 0
	StatusError    uint8 = 1 // handler failed; Value holds the error text
	StatusNotFound uint8 = 2
	StatusRetry    uint8 = 3 // transient condition, safe to retry
)

// Err converts a non-OK response into an error (nil for StatusOK).
func (m *Message) Err() error {
	switch m.Status {
	case StatusOK, StatusNotFound:
		return nil
	default:
		return fmt.Errorf("transport: remote status %d: %s", m.Status, m.Value)
	}
}

// MaxFrame is the largest encoded message a conforming endpoint
// accepts: 16 MiB comfortably holds a full partition transfer at the
// Table I partition size while bounding a malicious or corrupt
// length prefix.
const MaxFrame = 16 << 20

// frameHeaderLen is the byte length of the frame length prefix.
const frameHeaderLen = 4

// AppendMessage appends the encoded message body (no frame header) to
// dst and returns the extended slice. Layout: kind, status, then
// uvarint partition/origin/hops/epoch, then length-prefixed key and
// value.
func AppendMessage(dst []byte, m *Message) []byte {
	dst = append(dst, m.Kind, m.Status)
	dst = binary.AppendUvarint(dst, uint64(m.Partition))
	dst = binary.AppendUvarint(dst, uint64(m.Origin))
	dst = binary.AppendUvarint(dst, uint64(m.Hops))
	dst = binary.AppendUvarint(dst, m.Epoch)
	dst = binary.AppendUvarint(dst, uint64(len(m.Key)))
	dst = append(dst, m.Key...)
	dst = binary.AppendUvarint(dst, uint64(len(m.Value)))
	dst = append(dst, m.Value...)
	return dst
}

// DecodeMessage parses an encoded message body. The returned message
// aliases buf's key/value bytes; callers that retain them across
// buffer reuse must copy.
func DecodeMessage(buf []byte) (*Message, error) {
	m := &Message{}
	if len(buf) < 2 {
		return nil, fmt.Errorf("transport: message truncated at header (%d bytes)", len(buf))
	}
	m.Kind, m.Status = buf[0], buf[1]
	rest := buf[2:]
	var err error
	if m.Partition, rest, err = takeUint32(rest, "partition"); err != nil {
		return nil, err
	}
	if m.Origin, rest, err = takeUint32(rest, "origin"); err != nil {
		return nil, err
	}
	if m.Hops, rest, err = takeUint32(rest, "hops"); err != nil {
		return nil, err
	}
	if m.Epoch, rest, err = takeUvarint(rest, "epoch"); err != nil {
		return nil, err
	}
	if m.Key, rest, err = takeBytes(rest, "key"); err != nil {
		return nil, err
	}
	if m.Value, rest, err = takeBytes(rest, "value"); err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("transport: %d trailing bytes after message", len(rest))
	}
	return m, nil
}

func takeUvarint(buf []byte, field string) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("transport: bad uvarint in %s field", field)
	}
	// Reject overlong (non-minimal) encodings: a minimal uvarint never
	// ends in a zero byte except the single-byte encoding of zero.
	// Accepting them would let two different byte strings decode to the
	// same message, breaking the bit-identical wire contract.
	if n > 1 && buf[n-1] == 0 {
		return 0, nil, fmt.Errorf("transport: overlong uvarint in %s field", field)
	}
	return v, buf[n:], nil
}

// takeUint32 decodes a uvarint bound for a 32-bit field, rejecting
// values that would silently truncate (a corrupt or non-canonical
// encoding must not decode into a message that re-encodes
// differently).
func takeUint32(buf []byte, field string) (uint32, []byte, error) {
	v, rest, err := takeUvarint(buf, field)
	if err != nil {
		return 0, nil, err
	}
	if v > 1<<32-1 {
		return 0, nil, fmt.Errorf("transport: %s value %d overflows uint32", field, v)
	}
	return uint32(v), rest, nil
}

func takeBytes(buf []byte, field string) ([]byte, []byte, error) {
	n, rest, err := takeUvarint(buf, field)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("transport: %s length %d exceeds remaining %d bytes", field, n, len(rest))
	}
	if n == 0 {
		return nil, rest, nil
	}
	return rest[:n], rest[n:], nil
}

// WriteFrame writes one length-prefixed message to w.
func WriteFrame(w io.Writer, m *Message) error {
	body := AppendMessage(make([]byte, frameHeaderLen, frameHeaderLen+64+len(m.Key)+len(m.Value)), m)
	n := len(body) - frameHeaderLen
	if n > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds MaxFrame %d", n, MaxFrame)
	}
	binary.BigEndian.PutUint32(body[:frameHeaderLen], uint32(n))
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one length-prefixed message from r. It rejects
// frames over MaxFrame without reading them, so a corrupt prefix
// cannot trigger a giant allocation.
func ReadFrame(r io.Reader) (*Message, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("transport: frame length %d exceeds MaxFrame %d", n, MaxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("transport: short frame: %w", err)
	}
	return DecodeMessage(body)
}

// errorReply wraps a handler failure as a StatusError response so the
// sender sees the failure text instead of a dropped connection.
func errorReply(req *Message, err error) *Message {
	return &Message{Kind: req.Kind, Status: StatusError, Value: []byte(err.Error())}
}
