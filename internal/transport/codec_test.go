package transport

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"
)

func msgEqual(a, b *Message) bool {
	norm := func(m *Message) Message {
		c := *m
		if len(c.Key) == 0 {
			c.Key = nil
		}
		if len(c.Value) == 0 {
			c.Value = nil
		}
		return c
	}
	return reflect.DeepEqual(norm(a), norm(b))
}

func TestMessageRoundTrip(t *testing.T) {
	cases := []*Message{
		{},
		{Kind: 7, Status: StatusNotFound},
		{Kind: 1, Partition: 63, Origin: 9, Hops: 4, Epoch: 1 << 40, Key: []byte("k"), Value: []byte("v")},
		{Kind: 255, Status: 255, Partition: 1<<32 - 1, Origin: 1<<32 - 1, Hops: 1<<32 - 1, Epoch: 1<<64 - 1, Version: 1<<64 - 1},
		{Kind: 2, Key: bytes.Repeat([]byte{0xAB}, 1<<16), Value: bytes.Repeat([]byte{0xCD}, 1<<18)},
		{Kind: 3, Value: []byte{}},
		{Kind: 3, Partition: 7, Version: 5<<20 | 3, Key: []byte("k"), Value: []byte("v")},
		{Kind: 9, Partition: 3, Session: 1<<56 | 42, Cursor: 0, Value: []byte("begin")},
		{Kind: 10, Partition: 3, Session: 1<<56 | 42, Cursor: 17, Value: []byte("chunk")},
		{Kind: 11, Status: StatusRetry, Session: 1<<64 - 1, Cursor: 1<<64 - 1},
		{Kind: 12, Session: 7, Cursor: 1 << 32},
	}
	for i, m := range cases {
		enc := AppendMessage(nil, m)
		got, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !msgEqual(m, got) {
			t.Fatalf("case %d: round trip mismatch:\n in  %+v\n out %+v", i, m, got)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Kind: 1, Key: []byte("a"), Value: []byte("1")},
		{Kind: 2, Partition: 5, Epoch: 9},
		{Kind: 3, Value: bytes.Repeat([]byte("x"), 10000)},
	}
	for i, want := range msgs {
		ftype := FrameRequest
		if i%2 == 1 {
			ftype = FrameResponse
		}
		enc, err := AppendFrame(nil, ftype, uint64(i)*1e9+7, want)
		if err != nil {
			t.Fatalf("frame %d: encode: %v", i, err)
		}
		gotType, gotID, got, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		if gotType != ftype || gotID != uint64(i)*1e9+7 {
			t.Fatalf("frame %d: header mismatch: type %d id %d", i, gotType, gotID)
		}
		if !msgEqual(want, got) {
			t.Fatalf("frame %d mismatch: %+v vs %+v", i, want, got)
		}
	}
}

func TestFrameStreamRoundTrip(t *testing.T) {
	// Frames written back to back must parse in sequence from a byte
	// stream, the way the connection read loops consume them.
	var stream []byte
	msgs := []*Message{
		{Kind: 1, Key: []byte("a"), Value: []byte("1")},
		{Kind: 2, Partition: 5, Epoch: 9},
		{Kind: 3, Value: bytes.Repeat([]byte("x"), 10000)},
	}
	for i, m := range msgs {
		var err error
		stream, err = AppendFrame(stream, FrameRequest, uint64(i+1), m)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		_, id, n, err := parseFrameHeader(stream[:frameHeaderLen])
		if err != nil {
			t.Fatalf("frame %d: header: %v", i, err)
		}
		if id != uint64(i+1) {
			t.Fatalf("frame %d: correlation id %d", i, id)
		}
		got, err := DecodeMessage(stream[frameHeaderLen : frameHeaderLen+int(n)])
		if err != nil {
			t.Fatalf("frame %d: body: %v", i, err)
		}
		if !msgEqual(want, got) {
			t.Fatalf("frame %d mismatch: %+v vs %+v", i, want, got)
		}
		stream = stream[frameHeaderLen+int(n):]
	}
	if len(stream) != 0 {
		t.Fatalf("%d trailing bytes", len(stream))
	}
}

func TestDecodeMessageRejectsCorrupt(t *testing.T) {
	good := AppendMessage(nil, &Message{Kind: 1, Key: []byte("key"), Value: []byte("value")})
	cases := map[string][]byte{
		"empty":        {},
		"header only":  good[:1],
		"truncated":    good[:len(good)-3],
		"trailing":     append(append([]byte{}, good...), 0x00),
		"bad key len":  {1, 0, 0, 0, 0, 0, 0xFF},
		"overlong key": {1, 0, 0, 0, 0, 0, 200, 'a'},
	}
	for name, buf := range cases {
		if _, err := DecodeMessage(buf); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

func TestFrameHeaderRejections(t *testing.T) {
	good, err := AppendFrame(nil, FrameRequest, 42, &Message{Kind: 1, Key: []byte("k")})
	if err != nil {
		t.Fatal(err)
	}

	oversized := append([]byte{}, good...)
	binary.BigEndian.PutUint32(oversized[10:14], MaxFrame+1)
	if _, _, _, err := DecodeFrame(oversized); err == nil || !strings.Contains(err.Error(), "MaxFrame") {
		t.Fatalf("oversized frame not rejected: %v", err)
	}

	// A v1 frame (bare 4-byte length prefix) starts with 0x00 for any
	// body under 16 MiB; the v2 decoder must reject it as an
	// unsupported version instead of misparsing the stream.
	v1 := binary.BigEndian.AppendUint32(nil, 32)
	v1 = append(v1, bytes.Repeat([]byte{0xAA}, 32)...)
	if _, _, _, err := DecodeFrame(v1); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("v1 frame not rejected as wrong version: %v", err)
	}

	badVersion := append([]byte{}, good...)
	badVersion[0] = FrameVersion + 1
	if _, _, _, err := DecodeFrame(badVersion); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version not rejected: %v", err)
	}

	badType := append([]byte{}, good...)
	badType[1] = 9
	if _, _, _, err := DecodeFrame(badType); err == nil || !strings.Contains(err.Error(), "frame type") {
		t.Fatalf("unknown frame type not rejected: %v", err)
	}

	if _, _, _, err := DecodeFrame(good[:frameHeaderLen-1]); err == nil {
		t.Fatal("truncated header accepted")
	}
	short := append([]byte{}, good[:len(good)-1]...)
	if _, _, _, err := DecodeFrame(short); err == nil {
		t.Fatal("short body accepted")
	}
	long := append(append([]byte{}, good...), 0x00)
	if _, _, _, err := DecodeFrame(long); err == nil {
		t.Fatal("trailing bytes accepted")
	}

	tooBig := &Message{Value: make([]byte, MaxFrame+1)}
	if _, err := AppendFrame(nil, FrameRequest, 1, tooBig); err == nil {
		t.Fatal("AppendFrame accepted an over-MaxFrame body")
	}
}

func TestMessageErr(t *testing.T) {
	if err := (&Message{Status: StatusOK}).Err(); err != nil {
		t.Fatalf("StatusOK produced error %v", err)
	}
	if err := (&Message{Status: StatusNotFound}).Err(); err != nil {
		t.Fatalf("StatusNotFound is not an error condition, got %v", err)
	}
	err := (&Message{Status: StatusError, Value: []byte("boom")}).Err()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("StatusError lost the message: %v", err)
	}
}
