package transport

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"
)

func msgEqual(a, b *Message) bool {
	norm := func(m *Message) Message {
		c := *m
		if len(c.Key) == 0 {
			c.Key = nil
		}
		if len(c.Value) == 0 {
			c.Value = nil
		}
		return c
	}
	return reflect.DeepEqual(norm(a), norm(b))
}

func TestMessageRoundTrip(t *testing.T) {
	cases := []*Message{
		{},
		{Kind: 7, Status: StatusNotFound},
		{Kind: 1, Partition: 63, Origin: 9, Hops: 4, Epoch: 1 << 40, Key: []byte("k"), Value: []byte("v")},
		{Kind: 255, Status: 255, Partition: 1<<32 - 1, Origin: 1<<32 - 1, Hops: 1<<32 - 1, Epoch: 1<<64 - 1},
		{Kind: 2, Key: bytes.Repeat([]byte{0xAB}, 1<<16), Value: bytes.Repeat([]byte{0xCD}, 1<<18)},
		{Kind: 3, Value: []byte{}},
	}
	for i, m := range cases {
		enc := AppendMessage(nil, m)
		got, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !msgEqual(m, got) {
			t.Fatalf("case %d: round trip mismatch:\n in  %+v\n out %+v", i, m, got)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []*Message{
		{Kind: 1, Key: []byte("a"), Value: []byte("1")},
		{Kind: 2, Partition: 5, Epoch: 9},
		{Kind: 3, Value: bytes.Repeat([]byte("x"), 10000)},
	}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !msgEqual(want, got) {
			t.Fatalf("frame %d mismatch: %+v vs %+v", i, want, got)
		}
	}
}

func TestDecodeMessageRejectsCorrupt(t *testing.T) {
	good := AppendMessage(nil, &Message{Kind: 1, Key: []byte("key"), Value: []byte("value")})
	cases := map[string][]byte{
		"empty":        {},
		"header only":  good[:1],
		"truncated":    good[:len(good)-3],
		"trailing":     append(append([]byte{}, good...), 0x00),
		"bad key len":  {1, 0, 0, 0, 0, 0, 0xFF},
		"overlong key": {1, 0, 0, 0, 0, 0, 200, 'a'},
	}
	for name, buf := range cases {
		if _, err := DecodeMessage(buf); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	_, err := ReadFrame(bytes.NewReader(hdr[:]))
	if err == nil || !strings.Contains(err.Error(), "MaxFrame") {
		t.Fatalf("oversized frame not rejected: %v", err)
	}
}

func TestMessageErr(t *testing.T) {
	if err := (&Message{Status: StatusOK}).Err(); err != nil {
		t.Fatalf("StatusOK produced error %v", err)
	}
	if err := (&Message{Status: StatusNotFound}).Err(); err != nil {
		t.Fatalf("StatusNotFound is not an error condition, got %v", err)
	}
	err := (&Message{Status: StatusError, Value: []byte("boom")}).Err()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("StatusError lost the message: %v", err)
	}
}
