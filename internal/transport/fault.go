package transport

// Fault injection for deterministic chaos testing. A FaultEndpoint
// wraps any Transport and consults a FaultFunc before every outbound
// Send: the decider may let the message through, drop it (the sender
// sees ErrUnreachable, exactly what a lost request looks like to the
// retry/suspicion machinery above), or duplicate it (the message is
// delivered twice, which is what at-least-once delivery degenerates to
// — handlers must be idempotent). Delayed delivery is composed on top
// by the chaos harness: its decider clones the message, answers Drop,
// and re-sends the clone through the unwrapped inner transport at a
// later deterministic point.
//
// The wrapper carries no randomness and no clock of its own; all
// scheduling lives in the decider, so a seeded decider over the
// synchronous Loopback transport yields bit-identical fault schedules
// run after run.

// FaultAction is a FaultFunc's verdict on one outbound message.
type FaultAction int

const (
	// FaultDeliver passes the message through untouched.
	FaultDeliver FaultAction = iota
	// FaultDrop discards the message; Send returns ErrUnreachable.
	FaultDrop
	// FaultDuplicate delivers the message twice, back to back, and
	// returns the second reply (the dup is the one the "network"
	// retried; both deliveries run the receiver's handler).
	FaultDuplicate
)

// FaultFunc decides the fate of one outbound message from this
// endpoint to peer. It runs on every Send, on the sender's goroutine,
// before any delivery; m must not be retained or mutated (clone via
// AppendMessage/DecodeMessage to keep a copy). A nil FaultFunc
// delivers everything.
type FaultFunc func(from, to string, m *Message) FaultAction

// FaultEndpoint wraps an inner Transport with fault injection. Create
// with NewFault. The wrapper owns the inner transport: closing the
// wrapper closes it.
type FaultEndpoint struct {
	inner  Transport
	decide FaultFunc
}

var _ Transport = (*FaultEndpoint)(nil)

// NewFault wraps inner so every outbound Send consults decide first.
func NewFault(inner Transport, decide FaultFunc) *FaultEndpoint {
	return &FaultEndpoint{inner: inner, decide: decide}
}

// Addr implements Transport.
func (f *FaultEndpoint) Addr() string { return f.inner.Addr() }

// SetHandler implements Transport. Inbound traffic is not intercepted:
// faults are injected on the sending side only, so a message crossing
// two wrapped endpoints is judged exactly once.
func (f *FaultEndpoint) SetHandler(h Handler) { f.inner.SetHandler(h) }

// Send implements Transport.
func (f *FaultEndpoint) Send(peer string, req *Message) (*Message, error) {
	action := FaultDeliver
	if f.decide != nil {
		action = f.decide(f.inner.Addr(), peer, req)
	}
	switch action {
	case FaultDrop:
		return nil, ErrUnreachable
	case FaultDuplicate:
		if _, err := f.inner.Send(peer, req); err != nil {
			return nil, err
		}
		return f.inner.Send(peer, req)
	default:
		return f.inner.Send(peer, req)
	}
}

// Close implements Transport.
func (f *FaultEndpoint) Close() error { return f.inner.Close() }

// CloneMessage deep-copies a message through the codec, so deciders
// can retain it past the Send that produced it (delayed redelivery).
// Cloning a message that round-trips the codec cannot fail; the error
// path exists only for messages that would not survive the wire
// anyway.
func CloneMessage(m *Message) (*Message, error) {
	return DecodeMessage(AppendMessage(nil, m))
}
