package transport

import (
	"errors"
	"testing"
)

// faultNet builds two loopback endpoints where a's outbound traffic
// passes through a FaultEndpoint with the given decider. b echoes
// requests back with the value reversed so deliveries are observable.
func faultNet(t *testing.T, decide FaultFunc) (*FaultEndpoint, *int) {
	t.Helper()
	lb := NewLoopback()
	a := NewFault(lb.Endpoint("a"), decide)
	b := lb.Endpoint("b")
	delivered := new(int)
	b.SetHandler(func(from string, req *Message) (*Message, error) {
		*delivered++
		return &Message{Kind: req.Kind, Value: req.Value}, nil
	})
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, delivered
}

func TestFaultDeliverPassesThrough(t *testing.T) {
	a, delivered := faultNet(t, func(from, to string, m *Message) FaultAction {
		if from != "a" || to != "b" {
			t.Errorf("decider saw %s -> %s", from, to)
		}
		return FaultDeliver
	})
	resp, err := a.Send("b", &Message{Kind: 9, Value: []byte("x")})
	if err != nil || string(resp.Value) != "x" {
		t.Fatalf("deliver: resp=%+v err=%v", resp, err)
	}
	if *delivered != 1 {
		t.Fatalf("delivered %d times, want 1", *delivered)
	}
}

func TestFaultNilDeciderDelivers(t *testing.T) {
	a, delivered := faultNet(t, nil)
	if _, err := a.Send("b", &Message{Kind: 1}); err != nil {
		t.Fatal(err)
	}
	if *delivered != 1 {
		t.Fatalf("delivered %d times, want 1", *delivered)
	}
}

func TestFaultDropLooksUnreachable(t *testing.T) {
	a, delivered := faultNet(t, func(from, to string, m *Message) FaultAction {
		return FaultDrop
	})
	_, err := a.Send("b", &Message{Kind: 1})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("drop: err=%v, want ErrUnreachable", err)
	}
	if *delivered != 0 {
		t.Fatalf("dropped message was delivered %d times", *delivered)
	}
}

func TestFaultDuplicateDeliversTwice(t *testing.T) {
	a, delivered := faultNet(t, func(from, to string, m *Message) FaultAction {
		return FaultDuplicate
	})
	resp, err := a.Send("b", &Message{Kind: 1, Value: []byte("dup")})
	if err != nil || string(resp.Value) != "dup" {
		t.Fatalf("duplicate: resp=%+v err=%v", resp, err)
	}
	if *delivered != 2 {
		t.Fatalf("delivered %d times, want 2", *delivered)
	}
}

func TestFaultSelectiveByKind(t *testing.T) {
	a, delivered := faultNet(t, func(from, to string, m *Message) FaultAction {
		if m.Kind == 4 {
			return FaultDrop
		}
		return FaultDeliver
	})
	if _, err := a.Send("b", &Message{Kind: 4}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("kind 4 not dropped: %v", err)
	}
	if _, err := a.Send("b", &Message{Kind: 5}); err != nil {
		t.Fatalf("kind 5 dropped: %v", err)
	}
	if *delivered != 1 {
		t.Fatalf("delivered %d times, want 1", *delivered)
	}
}

func TestFaultEndpointForwardsLifecycle(t *testing.T) {
	lb := NewLoopback()
	f := NewFault(lb.Endpoint("x"), nil)
	if f.Addr() != "x" {
		t.Fatalf("Addr = %q", f.Addr())
	}
	// SetHandler must reach the inner endpoint: another peer sending to
	// "x" sees the installed handler's reply.
	f.SetHandler(func(from string, req *Message) (*Message, error) {
		return &Message{Kind: req.Kind, Value: []byte("inner")}, nil
	})
	y := lb.Endpoint("y")
	defer y.Close()
	resp, err := y.Send("x", &Message{Kind: 2})
	if err != nil || string(resp.Value) != "inner" {
		t.Fatalf("handler not forwarded: resp=%+v err=%v", resp, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Send("y", &Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
}

func TestCloneMessageIndependentCopy(t *testing.T) {
	orig := &Message{Kind: 3, Partition: 7, Key: []byte("k"), Value: []byte("v")}
	cl, err := CloneMessage(orig)
	if err != nil {
		t.Fatal(err)
	}
	if !msgEqual(orig, cl) {
		t.Fatalf("clone differs: %+v vs %+v", orig, cl)
	}
	cl.Value[0] = 'X'
	if orig.Value[0] != 'v' {
		t.Fatal("clone shares buffers with the original")
	}
}
