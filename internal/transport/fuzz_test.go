package transport

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecodeMessage fuzzes the length-prefixed codec's body decoder
// with the round-trip property: any input DecodeMessage accepts must
// re-encode and re-decode to the identical message (decode → encode →
// decode is a fixed point). Inputs the decoder rejects are fine; what
// it may never do is panic, over-allocate from an unvalidated length,
// or accept bytes that decode into a message it would encode
// differently (silent uvarint truncation).
func FuzzDecodeMessage(f *testing.F) {
	// Seed corpus: the codec_test.go round-trip cases plus the corrupt
	// shapes its rejection test enumerates.
	seeds := []*Message{
		{},
		{Kind: 7, Status: StatusNotFound},
		{Kind: 1, Partition: 63, Origin: 9, Hops: 4, Epoch: 1 << 40, Key: []byte("k"), Value: []byte("v")},
		{Kind: 255, Status: 255, Partition: 1<<32 - 1, Origin: 1<<32 - 1, Hops: 1<<32 - 1, Epoch: 1<<64 - 1, Version: 1<<64 - 1},
		{Kind: 2, Key: bytes.Repeat([]byte{0xAB}, 64), Value: bytes.Repeat([]byte{0xCD}, 256)},
		{Kind: 3, Value: []byte{}},
		// Version-bearing data-plane frames: a sync carrying a stamped
		// per-key version and a versioned read reply.
		{Kind: 3, Partition: 7, Version: 5<<20 | 3, Key: []byte("k"), Value: []byte("v")},
		{Kind: 8, Status: StatusOK, Partition: 2, Version: 1 << 21, Value: []byte("winner")},
		// Transfer-session frames: begin, chunk, cursor ack, complete —
		// the four v4 kinds that ride the Session/Cursor fields.
		{Kind: 9, Partition: 3, Session: 1<<56 | 42, Cursor: 0, Value: []byte("begin")},
		{Kind: 10, Partition: 3, Session: 1<<56 | 42, Cursor: 17, Value: []byte("chunk")},
		{Kind: 11, Status: StatusRetry, Partition: 3, Session: 1<<56 | 42, Cursor: 18},
		{Kind: 12, Partition: 3, Session: 1<<56 | 42, Cursor: 1<<64 - 1},
		// Anti-entropy frames (v5 vocabulary): a digest whose Value is a
		// leaf-vector blob, and a repair carrying an entry block. The
		// codec is kind-generic — these pin the new kinds' shapes in the
		// corpus so mutations explore their payload framing.
		{Kind: 13, Partition: 5, Epoch: 96, Origin: 2, Value: bytes.Repeat([]byte{0x5A}, 40)},
		{Kind: 14, Partition: 5, Epoch: 96, Origin: 2, Value: []byte("\x01\x06ae-key\x01\x02av")},
		// Delta-replication frames (v6 vocabulary). The node-layer
		// payload encoders are out of reach here, so the blobs are
		// hand-laid in their wire shapes: a sub-digest request carrying
		// one top bucket's 64 leaf hashes, its keylist reply (one
		// sub-bucket, one key/version pair), an ae-fetch key list, and
		// cursor/begin replies whose Version rides a target watermark
		// with a transfer-info blob (flags byte 1 + 64 leaves + root, or
		// the one-byte non-resident form) in the Value.
		{Kind: 13, Partition: 5, Epoch: 97, Origin: 2, Value: append([]byte{1, 0}, make([]byte, 8*64)...)},
		{Kind: 13, Status: StatusOK, Partition: 5, Value: []byte{1, 5, 1, 3, 'k', 'e', 'y', 9}},
		{Kind: 15, Partition: 5, Epoch: 97, Origin: 2, Value: []byte{1, 3, 'k', 'e', 'y'}},
		{Kind: 15, Status: StatusOK, Partition: 5, Value: []byte{1, 3, 'k', 'e', 'y', 9, 1, 'v'}},
		{Kind: 11, Status: StatusNotFound, Partition: 3, Version: 1 << 21, Value: append([]byte{1}, make([]byte, 8*64+8)...)},
		{Kind: 9, Status: StatusOK, Partition: 3, Session: 42, Version: 1 << 21, Value: []byte{0}},
	}
	for _, m := range seeds {
		f.Add(AppendMessage(nil, m))
	}
	good := AppendMessage(nil, &Message{Kind: 1, Key: []byte("key"), Value: []byte("value")})
	f.Add(good[:1])
	f.Add(good[:len(good)-3])
	f.Add(append(append([]byte{}, good...), 0x00))
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0xFF})
	// A 5-byte uvarint exceeding uint32 in the partition slot: must be
	// rejected, not truncated.
	over := []byte{1, 0}
	over = binary.AppendUvarint(over, 1<<33)
	f.Add(over)

	// Frame-layer seeds: well-formed v2 mux frames of both types, a
	// truncated header, a header/body length mismatch, and a v1 frame
	// (bare 4-byte length prefix) that must be rejected as version 0.
	for i, m := range seeds {
		frame, err := AppendFrame(nil, uint8(i%2), uint64(i)<<32|7, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		f.Add(frame[:frameHeaderLen-1])
		f.Add(frame[:len(frame)-1])
	}
	v1 := binary.BigEndian.AppendUint32(nil, uint32(len(good)))
	f.Add(append(v1, good...))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Body codec property: decode → encode → decode is a fixed
		// point, and any accepted input is the canonical encoding.
		m, err := DecodeMessage(data)
		if err == nil {
			enc := AppendMessage(nil, m)
			m2, err := DecodeMessage(enc)
			if err != nil {
				t.Fatalf("re-decode of accepted input failed: %v\ninput: %x\nre-encoded: %x", err, data, enc)
			}
			if !msgEqual(m, m2) {
				t.Fatalf("decode→encode→decode not a fixed point:\nfirst  %+v\nsecond %+v\ninput: %x", m, m2, data)
			}
			// The accepted encoding must itself be canonical:
			// re-encoding the decoded message must reproduce the input
			// byte for byte (the decoder rejects trailing bytes and
			// overlong uvarints, so any divergence is a truncation bug).
			if !bytes.Equal(enc, data) {
				t.Fatalf("accepted non-canonical encoding:\ninput      %x\nre-encoded %x", data, enc)
			}
		}
		// Frame codec property: the same bytes read as a complete mux
		// frame must round-trip header and body canonically too, and a
		// rejected frame must never panic. Accepting data both ways is
		// impossible by construction (a frame's first byte is the
		// version, a body's is the kind — but the properties hold
		// independently, so no cross-check is needed).
		ftype, id, fm, err := DecodeFrame(data)
		if err != nil {
			return
		}
		enc, err := AppendFrame(nil, ftype, id, fm)
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v\ninput: %x", err, data)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("accepted non-canonical frame:\ninput      %x\nre-encoded %x", data, enc)
		}
		ftype2, id2, fm2, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v\ninput: %x", err, data)
		}
		if ftype2 != ftype || id2 != id || !msgEqual(fm, fm2) {
			t.Fatalf("frame decode→encode→decode not a fixed point:\nfirst  type=%d id=%d %+v\nsecond type=%d id=%d %+v",
				ftype, id, fm, ftype2, id2, fm2)
		}
	})
}
