package transport

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecodeMessage fuzzes the length-prefixed codec's body decoder
// with the round-trip property: any input DecodeMessage accepts must
// re-encode and re-decode to the identical message (decode → encode →
// decode is a fixed point). Inputs the decoder rejects are fine; what
// it may never do is panic, over-allocate from an unvalidated length,
// or accept bytes that decode into a message it would encode
// differently (silent uvarint truncation).
func FuzzDecodeMessage(f *testing.F) {
	// Seed corpus: the codec_test.go round-trip cases plus the corrupt
	// shapes its rejection test enumerates.
	seeds := []*Message{
		{},
		{Kind: 7, Status: StatusNotFound},
		{Kind: 1, Partition: 63, Origin: 9, Hops: 4, Epoch: 1 << 40, Key: []byte("k"), Value: []byte("v")},
		{Kind: 255, Status: 255, Partition: 1<<32 - 1, Origin: 1<<32 - 1, Hops: 1<<32 - 1, Epoch: 1<<64 - 1},
		{Kind: 2, Key: bytes.Repeat([]byte{0xAB}, 64), Value: bytes.Repeat([]byte{0xCD}, 256)},
		{Kind: 3, Value: []byte{}},
	}
	for _, m := range seeds {
		f.Add(AppendMessage(nil, m))
	}
	good := AppendMessage(nil, &Message{Kind: 1, Key: []byte("key"), Value: []byte("value")})
	f.Add(good[:1])
	f.Add(good[:len(good)-3])
	f.Add(append(append([]byte{}, good...), 0x00))
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0xFF})
	// A 5-byte uvarint exceeding uint32 in the partition slot: must be
	// rejected, not truncated.
	over := []byte{1, 0}
	over = binary.AppendUvarint(over, 1<<33)
	f.Add(over)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return
		}
		enc := AppendMessage(nil, m)
		m2, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted input failed: %v\ninput: %x\nre-encoded: %x", err, data, enc)
		}
		if !msgEqual(m, m2) {
			t.Fatalf("decode→encode→decode not a fixed point:\nfirst  %+v\nsecond %+v\ninput: %x", m, m2, data)
		}
		// The accepted encoding must itself be canonical: re-encoding
		// the decoded message must reproduce the input byte for byte
		// (the decoder rejects trailing bytes and overlong uvarints, so
		// any divergence is a truncation bug).
		if !bytes.Equal(enc, data) {
			t.Fatalf("accepted non-canonical encoding:\ninput      %x\nre-encoded %x", data, enc)
		}
	})
}
