package transport

import (
	"fmt"
	"sync"
)

// Loopback is an in-process message network: endpoints register under
// names, and Send delivers synchronously on the caller's goroutine.
// Every message still round-trips through the binary codec, so the
// loopback exercises exactly the bytes TCP would carry — only the
// socket is elided. Delivery order is the call order, which is what
// makes multi-node tests deterministic for a fixed seed.
//
// Loopback also models partitions: SetDown(name, true) makes an
// endpoint unreachable in both directions, the in-process equivalent
// of killing a node's network.
type Loopback struct {
	mu   sync.Mutex
	eps  map[string]*LoopbackEndpoint
	down map[string]bool
}

// NewLoopback returns an empty loopback network.
func NewLoopback() *Loopback {
	return &Loopback{eps: make(map[string]*LoopbackEndpoint), down: make(map[string]bool)}
}

// Endpoint registers (or returns the existing) endpoint under name.
func (l *Loopback) Endpoint(name string) *LoopbackEndpoint {
	l.mu.Lock()
	defer l.mu.Unlock()
	if ep, ok := l.eps[name]; ok {
		return ep
	}
	ep := &LoopbackEndpoint{net: l, name: name}
	l.eps[name] = ep
	return ep
}

// SetDown marks an endpoint unreachable (true) or restores it (false).
// Sends to or from a down endpoint fail with ErrUnreachable.
func (l *Loopback) SetDown(name string, down bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.down[name] = down
}

// lookup resolves the target endpoint and checks reachability of both
// ends.
func (l *Loopback) lookup(from, to string) (*LoopbackEndpoint, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.down[from] || l.down[to] {
		return nil, fmt.Errorf("%w: %s -> %s (partitioned)", ErrUnreachable, from, to)
	}
	ep, ok := l.eps[to]
	if !ok {
		return nil, fmt.Errorf("%w: %s is not registered", ErrUnreachable, to)
	}
	return ep, nil
}

// LoopbackEndpoint is one endpoint of a Loopback network. Create with
// Loopback.Endpoint.
type LoopbackEndpoint struct {
	net  *Loopback
	name string

	mu      sync.Mutex
	handler Handler
	closed  bool
}

var _ Transport = (*LoopbackEndpoint)(nil)

// Addr implements Transport.
func (ep *LoopbackEndpoint) Addr() string { return ep.name }

// SetHandler implements Transport.
func (ep *LoopbackEndpoint) SetHandler(h Handler) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.handler = h
}

// Send implements Transport: the request is encoded, decoded at the
// peer, handled synchronously, and the reply encoded back — the same
// byte path as TCP without the socket. Sends are concurrency-safe with
// the same semantics as the mux TCP transport (any number in flight),
// and the request direction runs on pooled codec buffers exactly as
// TCP does: the handler borrows the decoded request for the duration
// of the call, and the returned response is always freshly allocated
// for the caller to own.
func (ep *LoopbackEndpoint) Send(peer string, req *Message) (*Message, error) {
	ep.mu.Lock()
	closed := ep.closed
	ep.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	//lint:ignore rfhlint/closecheck lookup borrows the peer's registered endpoint; the Loopback registry owns it and callers must not close it
	target, err := ep.net.lookup(ep.name, peer)
	if err != nil {
		return nil, err
	}
	reqBuf := getBuf()
	*reqBuf = AppendMessage((*reqBuf)[:0], req)
	wire := getMsg()
	if err := DecodeMessageInto(wire, *reqBuf); err != nil {
		putMsg(wire)
		putBuf(reqBuf)
		return nil, err
	}
	resp := target.deliver(ep.name, wire)
	// Encode the response before releasing the request scratch:
	// echo-style handlers may reply with slices aliasing the request's
	// key/value bytes.
	respBuf := AppendMessage(make([]byte, 0, 64+len(resp.Key)+len(resp.Value)), resp)
	putMsg(wire)
	putBuf(reqBuf)
	return DecodeMessage(respBuf)
}

// deliver runs the endpoint's handler for one inbound request.
func (ep *LoopbackEndpoint) deliver(from string, req *Message) *Message {
	ep.mu.Lock()
	h := ep.handler
	closed := ep.closed
	ep.mu.Unlock()
	if closed || h == nil {
		return errorReply(req, fmt.Errorf("loopback endpoint %s has no handler", ep.name))
	}
	resp, err := h(from, req)
	if err != nil {
		return errorReply(req, err)
	}
	if resp == nil {
		resp = &Message{Kind: req.Kind}
	}
	return resp
}

// Close implements Transport. The endpoint stays registered (so peers
// get ErrUnreachable-style handler errors rather than dangling names)
// but refuses all further traffic.
func (ep *LoopbackEndpoint) Close() error {
	ep.mu.Lock()
	ep.closed = true
	ep.mu.Unlock()
	ep.net.SetDown(ep.name, true)
	return nil
}
