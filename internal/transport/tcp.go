package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"
)

// TCPOptions tunes the TCP transport. Zero values select the
// defaults; see DefaultTCPOptions.
type TCPOptions struct {
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// IOTimeout bounds one request/response exchange end to end, and
	// individually bounds every socket write (default 5s).
	IOTimeout time.Duration
	// Retries is how many times a failed Send is re-attempted on a
	// fresh connection before giving up (default 2, i.e. up to three
	// attempts total).
	Retries int
	// RetryBackoff is the sleep before the first retry; each further
	// retry doubles it (default 50ms). The sleep is cancelled by Close.
	RetryBackoff time.Duration
}

// DefaultTCPOptions returns the default timeouts.
func DefaultTCPOptions() TCPOptions {
	return TCPOptions{
		DialTimeout:  2 * time.Second,
		IOTimeout:    5 * time.Second,
		Retries:      2,
		RetryBackoff: 50 * time.Millisecond,
	}
}

func (o TCPOptions) withDefaults() TCPOptions {
	d := DefaultTCPOptions()
	if o.DialTimeout <= 0 {
		o.DialTimeout = d.DialTimeout
	}
	if o.IOTimeout <= 0 {
		o.IOTimeout = d.IOTimeout
	}
	if o.Retries < 0 {
		o.Retries = d.Retries
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = d.RetryBackoff
	}
	return o
}

// Per-connection buffer sizes, and the cap on frames queued to one
// connection writer before enqueue blocks.
const (
	readBufSize     = 64 << 10
	writeBufSize    = 64 << 10
	writeQueueDepth = 256
)

// TCP is the real-socket transport: v2 mux frames (versioned header +
// correlation ID) over one persistent connection per peer. Any number
// of Sends to the same peer proceed concurrently — each registers a
// correlation ID in the connection's pending map, a single writer
// goroutine coalesces queued frames into batched flushes, and a single
// reader goroutine matches response IDs back to their waiters. Failed
// exchanges redial with bounded exponential backoff; both the backoff
// sleep and an in-flight dial are cancelled promptly by Close.
//
// A TCP created with ListenTCP also accepts inbound connections and
// serves its Handler on them, dispatching each request to a parked
// worker so slow handlers never stall a connection's read loop;
// NewTCPClient creates a send-only endpoint (used by rfhctl).
type TCP struct {
	opts TCPOptions
	ln   net.Listener // nil for client-only endpoints

	dialCtx    context.Context // cancelled on Close; aborts in-flight dials
	cancelDial context.CancelFunc
	closeCh    chan struct{} // closed on Close; cancels backoff sleeps and parked workers

	mu      sync.Mutex
	handler Handler
	peers   map[string]*muxPeer
	inbound map[net.Conn]struct{}
	closed  bool

	tasks taskPool
	wg    sync.WaitGroup // every transport goroutine registers here
}

var _ Transport = (*TCP)(nil)

func newTCP(ln net.Listener, h Handler, opts TCPOptions) *TCP {
	t := &TCP{
		opts: opts.withDefaults(), ln: ln, handler: h,
		closeCh: make(chan struct{}),
		peers:   make(map[string]*muxPeer),
		inbound: make(map[net.Conn]struct{}),
	}
	t.dialCtx, t.cancelDial = context.WithCancel(context.Background())
	t.tasks.t = t
	t.tasks.idle = make(chan chan func(), idleWorkers)
	return t
}

// ListenTCP binds addr (e.g. "127.0.0.1:0") and serves h on inbound
// connections. Use SetHandler later if h must reference state that
// needs the transport's address first.
func ListenTCP(addr string, h Handler, opts TCPOptions) (*TCP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t := newTCP(ln, h, opts)
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// NewTCPClient returns a send-only TCP endpoint: no listener, no
// inbound traffic. Addr returns "".
func NewTCPClient(opts TCPOptions) *TCP {
	return newTCP(nil, nil, opts)
}

// Addr implements Transport.
func (t *TCP) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// SetHandler implements Transport.
func (t *TCP) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// acceptLoop accepts inbound connections until the listener closes.
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.serveConn(conn)
	}
}

// serveConn reads request frames on one inbound connection until it
// drops, dispatching each to the worker pool. Requests from one peer
// are served concurrently and may complete out of order; the
// correlation ID echoed on each response frame lets the sender match
// replies. A frame that fails header validation (wrong version,
// unknown type, oversized) drops the connection: the stream can no
// longer be trusted to be in sync.
func (t *TCP) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.inbound[conn] = struct{}{}
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()

	wr := newFrameWriter(t, conn)
	wr.onErr = func(error) { conn.Close() }
	t.wg.Add(1)
	go wr.loop()
	defer wr.stop()

	from := conn.RemoteAddr().String()
	br := bufio.NewReaderSize(conn, readBufSize)
	var hdr [frameHeaderLen]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		ftype, id, n, err := parseFrameHeader(hdr[:])
		if err != nil || ftype != FrameRequest {
			return
		}
		body := getBuf()
		*body = grow(*body, int(n))
		if _, err := io.ReadFull(br, *body); err != nil {
			putBuf(body)
			return
		}
		t.tasks.run(func() { t.serveRequest(from, id, body, wr) })
	}
}

// serveRequest decodes and handles one inbound request, then queues
// the response frame. body is a pooled buffer owned by this call; it
// is released only after the response is encoded, because handlers may
// return replies aliasing the request's key/value bytes.
func (t *TCP) serveRequest(from string, id uint64, body *[]byte, wr *frameWriter) {
	req := getMsg()
	var resp *Message
	if err := DecodeMessageInto(req, *body); err != nil {
		resp = errorReply(req, fmt.Errorf("bad request body: %w", err))
	} else {
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h == nil {
			resp = errorReply(req, fmt.Errorf("endpoint %s has no handler", t.Addr()))
		} else {
			r, herr := h(from, req)
			switch {
			case herr != nil:
				resp = errorReply(req, herr)
			case r == nil:
				resp = &Message{Kind: req.Kind}
			default:
				resp = r
			}
		}
	}
	out := getBuf()
	b, err := AppendFrame((*out)[:0], FrameResponse, id, resp)
	if err != nil {
		b, err = AppendFrame((*out)[:0], FrameResponse, id, errorReply(req, err))
	}
	putMsg(req)
	putBuf(body)
	if err != nil {
		putBuf(out)
		return
	}
	*out = b
	wr.enqueue(out)
}

// grow returns b resized to length n, reallocating only when capacity
// is short.
func grow(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

// Send implements Transport: one multiplexed exchange on the pooled
// connection to peer, redialling with backoff on failure. Sends to the
// same peer do not serialise; each gets its own correlation ID.
func (t *TCP) Send(peer string, req *Message) (*Message, error) {
	p, err := t.peer(peer)
	if err != nil {
		return nil, err
	}
	backoff := t.opts.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= t.opts.Retries; attempt++ {
		if attempt > 0 {
			// The backoff sleep must not hold up shutdown: Close
			// cancels it through closeCh.
			timer := acquireTimer(backoff)
			select {
			case <-timer.C:
			case <-t.closeCh:
				releaseTimer(timer)
				return nil, ErrClosed
			}
			releaseTimer(timer)
			backoff *= 2
		}
		resp, err := p.exchange(req)
		if err == nil {
			return resp, nil
		}
		if errors.Is(err, ErrClosed) || errors.Is(err, errFrameSize) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("%w: %s after %d attempts: %v", ErrUnreachable, peer, t.opts.Retries+1, lastErr)
}

// peer returns (creating if needed) the mux peer for addr.
func (t *TCP) peer(addr string) (*muxPeer, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	p, ok := t.peers[addr]
	if !ok {
		p = &muxPeer{t: t, addr: addr}
		t.peers[addr] = p
	}
	return p, nil
}

// Close implements Transport: stops the listener, cancels in-flight
// dials and backoff sleeps, drops every connection, and waits for all
// transport goroutines (accept loop, per-connection readers and
// writers, request workers) to exit — after Close returns the
// transport owns no goroutines.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	peers := make([]*muxPeer, 0, len(t.peers))
	//lint:ignore rfhlint/detrange collecting connections to close; order does not affect any state
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	conns := make([]net.Conn, 0, len(t.inbound))
	//lint:ignore rfhlint/detrange collecting connections to close; order does not affect any state
	for conn := range t.inbound {
		conns = append(conns, conn)
	}
	t.mu.Unlock()
	close(t.closeCh)
	t.cancelDial()
	if t.ln != nil {
		t.ln.Close()
	}
	for _, p := range peers {
		p.shutdown()
	}
	for _, conn := range conns {
		conn.Close()
	}
	t.wg.Wait()
	return nil
}

// muxPeer owns the outbound multiplexed connection to one peer
// address, redialling lazily after failures.
type muxPeer struct {
	t    *TCP
	addr string

	mu   sync.Mutex
	conn *muxConn // live connection; nil before first dial and after failure
}

// muxConn is one live multiplexed connection: a frameWriter goroutine
// draining the write queue, a reader goroutine matching response
// correlation IDs against the pending map, and any number of in-flight
// exchanges registered in it.
type muxConn struct {
	peer *muxPeer
	conn net.Conn
	wr   *frameWriter

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *Message
	broken  bool
	err     error

	brokenCh chan struct{} // closed when the connection fails
}

// get returns the live connection, dialling a fresh one if needed.
// Holding p.mu across the dial serialises concurrent Sends during
// connection establishment — they all need the same connection anyway.
func (p *muxPeer) get() (*muxConn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		return p.conn, nil
	}
	t := p.t
	d := net.Dialer{Timeout: t.opts.DialTimeout}
	conn, err := d.DialContext(t.dialCtx, "tcp", p.addr)
	if err != nil {
		if t.dialCtx.Err() != nil {
			return nil, ErrClosed
		}
		return nil, err
	}
	mc := &muxConn{
		peer: p, conn: conn,
		wr:       newFrameWriter(t, conn),
		pending:  make(map[uint64]chan *Message),
		brokenCh: make(chan struct{}),
	}
	mc.wr.onErr = mc.fail
	// Starting the connection goroutines must not race Close's
	// wg.Wait: re-check closed under t.mu before the Add.
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	t.wg.Add(2)
	t.mu.Unlock()
	go mc.wr.loop()
	go mc.readLoop()
	p.conn = mc
	return mc, nil
}

// clear detaches a failed connection so the next Send redials.
func (p *muxPeer) clear(mc *muxConn) {
	p.mu.Lock()
	if p.conn == mc {
		p.conn = nil
	}
	p.mu.Unlock()
}

// shutdown (Close path) kills the live connection, if any.
func (p *muxPeer) shutdown() {
	p.mu.Lock()
	mc := p.conn
	p.mu.Unlock()
	if mc != nil {
		mc.fail(ErrClosed)
	}
}

// exchange runs one request/response: register a correlation ID in the
// pending map, hand the encoded frame to the connection's writer, wait
// for the reader to deliver the matching response.
func (p *muxPeer) exchange(req *Message) (*Message, error) {
	mc, err := p.get()
	if err != nil {
		return nil, err
	}
	ch := make(chan *Message, 1)
	id, err := mc.register(ch)
	if err != nil {
		return nil, err
	}
	buf := getBuf()
	b, err := AppendFrame((*buf)[:0], FrameRequest, id, req)
	if err != nil {
		mc.deregister(id)
		putBuf(buf)
		return nil, err
	}
	*buf = b
	if err := mc.wr.enqueue(buf); err != nil {
		mc.deregister(id)
		return nil, mc.failure()
	}
	timer := acquireTimer(p.t.opts.IOTimeout)
	defer releaseTimer(timer)
	select {
	case resp := <-ch:
		return resp, nil
	case <-mc.brokenCh:
		return mc.lastChance(ch, id, mc.failure())
	case <-timer.C:
		// No reply within the exchange budget: the connection is not
		// making progress, so kill it — every other waiter fails fast
		// and the next Send redials.
		err := fmt.Errorf("transport: request to %s timed out after %v", p.addr, p.t.opts.IOTimeout)
		mc.fail(err)
		return mc.lastChance(ch, id, err)
	}
}

// lastChance resolves the race between a failure and a response that
// was already delivered: the pending entry is removed, and a reply
// that beat the failure wins.
func (mc *muxConn) lastChance(ch chan *Message, id uint64, err error) (*Message, error) {
	mc.deregister(id)
	select {
	case resp := <-ch:
		return resp, nil
	default:
		return nil, err
	}
}

// register assigns the next correlation ID to a waiting exchange.
func (mc *muxConn) register(ch chan *Message) (uint64, error) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.broken {
		return 0, mc.err
	}
	mc.nextID++
	id := mc.nextID
	mc.pending[id] = ch
	return id, nil
}

func (mc *muxConn) deregister(id uint64) {
	mc.mu.Lock()
	delete(mc.pending, id)
	mc.mu.Unlock()
}

// failure returns the error the connection broke with.
func (mc *muxConn) failure() error {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.err != nil {
		return mc.err
	}
	return fmt.Errorf("transport: connection to %s failed", mc.peer.addr)
}

// fail marks the connection broken exactly once: waiters wake via
// brokenCh, both connection goroutines unblock via conn.Close, and the
// peer slot clears so the next Send redials.
func (mc *muxConn) fail(err error) {
	mc.mu.Lock()
	if mc.broken {
		mc.mu.Unlock()
		return
	}
	mc.broken = true
	mc.err = err
	mc.mu.Unlock()
	close(mc.brokenCh)
	mc.conn.Close()
	mc.wr.stop()
	mc.peer.clear(mc)
}

// readLoop matches response frames to pending exchanges until the
// connection breaks. Response bodies are freshly allocated, never
// pooled: the Send caller owns the returned message indefinitely.
func (mc *muxConn) readLoop() {
	defer mc.peer.t.wg.Done()
	br := bufio.NewReaderSize(mc.conn, readBufSize)
	var hdr [frameHeaderLen]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			mc.fail(fmt.Errorf("transport: read %s: %w", mc.peer.addr, err))
			return
		}
		ftype, id, n, err := parseFrameHeader(hdr[:])
		if err != nil {
			mc.fail(err)
			return
		}
		if ftype != FrameResponse {
			mc.fail(fmt.Errorf("transport: peer %s sent frame type %d on a client connection", mc.peer.addr, ftype))
			return
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			mc.fail(fmt.Errorf("transport: short frame from %s: %w", mc.peer.addr, err))
			return
		}
		resp, err := DecodeMessage(body)
		if err != nil {
			mc.fail(err)
			return
		}
		mc.deliver(id, resp)
	}
}

// deliver hands a response to the exchange that registered id. An
// unknown id belongs to an exchange that already gave up (timeout or
// enqueue failure); its late response is dropped.
func (mc *muxConn) deliver(id uint64, resp *Message) {
	mc.mu.Lock()
	ch, ok := mc.pending[id]
	if ok {
		delete(mc.pending, id)
	}
	mc.mu.Unlock()
	if ok {
		ch <- resp // buffered; never blocks
	}
}

// frameWriter owns all writes on one connection: a single goroutine
// drains a queue of pre-encoded frames, coalescing whatever is queued
// into one buffered flush — one syscall amortised over a burst of
// in-flight requests. Queued buffers come from bufPool and return to
// it after writing.
type frameWriter struct {
	t     *TCP
	conn  net.Conn
	onErr func(error) // invoked once if a write fails

	ch     chan *[]byte
	stopCh chan struct{}
	once   sync.Once
}

func newFrameWriter(t *TCP, conn net.Conn) *frameWriter {
	return &frameWriter{
		t: t, conn: conn,
		ch:     make(chan *[]byte, writeQueueDepth),
		stopCh: make(chan struct{}),
	}
}

// enqueue queues one encoded frame, transferring buf's ownership to
// the writer. It fails only when the writer has stopped.
func (w *frameWriter) enqueue(buf *[]byte) error {
	select {
	case w.ch <- buf:
		return nil
	case <-w.stopCh:
		putBuf(buf)
		return fmt.Errorf("transport: connection writer stopped")
	}
}

// stop terminates the writer goroutine. Safe to call repeatedly and
// concurrently with enqueue.
func (w *frameWriter) stop() {
	w.once.Do(func() { close(w.stopCh) })
}

// loop drains the queue until stopped or a write fails. The spawner
// registers it on t.wg.
func (w *frameWriter) loop() {
	defer w.t.wg.Done()
	defer w.drain()
	bw := bufio.NewWriterSize(w.conn, writeBufSize)
	for {
		select {
		case <-w.stopCh:
			return
		case buf := <-w.ch:
			if !w.writeBatch(bw, buf) {
				return
			}
		}
	}
}

// writeBatch writes buf plus everything else already queued, then
// flushes once. Before flushing it yields the processor once: senders
// made runnable by the replies already written get a chance to enqueue
// their next frame, so under concurrent load whole bursts coalesce
// into one flush instead of one syscall per frame. The yield costs a
// scheduler pass (~hundreds of ns) against a socket round trip
// (~tens of µs), so the latency tax on an idle connection is noise.
// On failure it stops the writer and reports the error through onErr.
func (w *frameWriter) writeBatch(bw *bufio.Writer, buf *[]byte) bool {
	//lint:ignore rfhlint/nowallclock real-socket write deadline; not simulation state
	deadline := time.Now().Add(w.t.opts.IOTimeout)
	w.conn.SetWriteDeadline(deadline)
	err := w.write(bw, buf)
	yielded := false
	for err == nil {
		select {
		case more := <-w.ch:
			err = w.write(bw, more)
			yielded = false
			continue
		default:
		}
		if !yielded && bw.Buffered() < writeBufSize/2 {
			yielded = true
			runtime.Gosched()
			continue
		}
		break
	}
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		w.stop()
		if w.onErr != nil {
			w.onErr(err)
		}
		return false
	}
	return true
}

func (w *frameWriter) write(bw *bufio.Writer, buf *[]byte) error {
	_, err := bw.Write(*buf)
	putBuf(buf)
	return err
}

// drain returns any still-queued buffers to the pool after the loop
// exits.
func (w *frameWriter) drain() {
	for {
		select {
		case buf := <-w.ch:
			putBuf(buf)
		default:
			return
		}
	}
}

// idleWorkers caps how many finished request workers stay parked for
// reuse; workers beyond that exit after their task.
const idleWorkers = 64

// taskPool runs inbound request handlers on reusable goroutines. It
// grows without bound under load — a bounded pool could deadlock when
// handlers issue Sends whose replies depend on other inbound requests
// completing (cyclic waits across nodes) — but parks finished workers
// for reuse so the steady state spawns nothing.
type taskPool struct {
	t    *TCP
	idle chan chan func()
}

// run executes f on a parked worker, or a fresh goroutine when none is
// available.
func (tp *taskPool) run(f func()) {
	select {
	case w := <-tp.idle:
		select {
		case w <- f:
		case <-tp.t.closeCh:
			// The worker exited on close before receiving; f served a
			// connection that is going down anyway.
		}
	default:
		tp.t.mu.Lock()
		if tp.t.closed {
			tp.t.mu.Unlock()
			return
		}
		tp.t.wg.Add(1)
		tp.t.mu.Unlock()
		go tp.worker(f)
	}
}

// worker runs its first task, then parks for reuse until the idle
// bench is full or the transport closes.
func (tp *taskPool) worker(f func()) {
	defer tp.t.wg.Done()
	self := make(chan func())
	for {
		f()
		select {
		case tp.idle <- self:
		default:
			return
		}
		select {
		case f = <-self:
		case <-tp.t.closeCh:
			return
		}
	}
}

// timerPool recycles exchange timers: a Send on the happy path stops
// its timer long before it fires, so the runtime timer is reusable.
var timerPool sync.Pool

func acquireTimer(d time.Duration) *time.Timer {
	if t, ok := timerPool.Get().(*time.Timer); ok {
		t.Reset(d)
		return t
	}
	//lint:ignore rfhlint/nowallclock real-socket exchange timeout; not simulation state
	return time.NewTimer(d)
}

// releaseTimer stops and drains a timer so its next Reset is safe.
func releaseTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}
