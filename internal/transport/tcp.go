package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCPOptions tunes the TCP transport. Zero values select the
// defaults; see DefaultTCPOptions.
type TCPOptions struct {
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// IOTimeout bounds one request/response exchange: the frame write
	// and the reply read each get this deadline (default 5s).
	IOTimeout time.Duration
	// Retries is how many times a failed Send is re-attempted on a
	// fresh connection before giving up (default 2, i.e. up to three
	// attempts total).
	Retries int
	// RetryBackoff is the sleep before the first retry; each further
	// retry doubles it (default 50ms).
	RetryBackoff time.Duration
}

// DefaultTCPOptions returns the default timeouts.
func DefaultTCPOptions() TCPOptions {
	return TCPOptions{
		DialTimeout:  2 * time.Second,
		IOTimeout:    5 * time.Second,
		Retries:      2,
		RetryBackoff: 50 * time.Millisecond,
	}
}

func (o TCPOptions) withDefaults() TCPOptions {
	d := DefaultTCPOptions()
	if o.DialTimeout <= 0 {
		o.DialTimeout = d.DialTimeout
	}
	if o.IOTimeout <= 0 {
		o.IOTimeout = d.IOTimeout
	}
	if o.Retries < 0 {
		o.Retries = d.Retries
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = d.RetryBackoff
	}
	return o
}

// TCP is the real-socket transport: length-prefixed frames over
// persistent per-peer connections. Outbound connections are pooled
// one per peer and serialise one in-flight request each; failed
// exchanges redial with bounded exponential backoff. A TCP created
// with ListenTCP also accepts inbound connections and serves its
// Handler on them; NewTCPClient creates a send-only endpoint (used by
// rfhctl).
type TCP struct {
	opts TCPOptions
	ln   net.Listener // nil for client-only endpoints

	mu      sync.Mutex
	handler Handler
	peers   map[string]*tcpPeer
	inbound map[net.Conn]struct{}
	closed  bool

	wg sync.WaitGroup // accept loop + server conn goroutines
}

var _ Transport = (*TCP)(nil)

// tcpPeer is the pooled outbound connection to one peer. Its mutex
// serialises one request/response exchange at a time.
type tcpPeer struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
}

// ListenTCP binds addr (e.g. "127.0.0.1:0") and serves h on inbound
// connections. Use SetHandler later if h must reference state that
// needs the transport's address first.
func ListenTCP(addr string, h Handler, opts TCPOptions) (*TCP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t := &TCP{
		opts: opts.withDefaults(), ln: ln, handler: h,
		peers: make(map[string]*tcpPeer), inbound: make(map[net.Conn]struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// NewTCPClient returns a send-only TCP endpoint: no listener, no
// inbound traffic. Addr returns "".
func NewTCPClient(opts TCPOptions) *TCP {
	return &TCP{opts: opts.withDefaults(), peers: make(map[string]*tcpPeer)}
}

// Addr implements Transport.
func (t *TCP) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// SetHandler implements Transport.
func (t *TCP) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// acceptLoop accepts inbound connections until the listener closes.
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.serveConn(conn)
	}
}

// serveConn answers frames on one inbound connection until it drops.
func (t *TCP) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.inbound[conn] = struct{}{}
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	from := conn.RemoteAddr().String()
	br := bufio.NewReader(conn)
	for {
		req, err := ReadFrame(br)
		if err != nil {
			return
		}
		t.mu.Lock()
		h := t.handler
		closed := t.closed
		t.mu.Unlock()
		var resp *Message
		switch {
		case closed:
			return
		case h == nil:
			resp = errorReply(req, fmt.Errorf("endpoint %s has no handler", t.Addr()))
		default:
			r, herr := h(from, req)
			if herr != nil {
				resp = errorReply(req, herr)
			} else if r == nil {
				resp = &Message{Kind: req.Kind}
			} else {
				resp = r
			}
		}
		//lint:ignore rfhlint/nowallclock real-socket I/O deadline; the node layer's epoch logic never sees this clock
		deadline := time.Now().Add(t.opts.IOTimeout)
		if err := conn.SetWriteDeadline(deadline); err != nil {
			return
		}
		if err := WriteFrame(conn, resp); err != nil {
			return
		}
	}
}

// Send implements Transport: one framed exchange on the pooled
// connection to peer, redialling with backoff on failure.
func (t *TCP) Send(peer string, req *Message) (*Message, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	p, ok := t.peers[peer]
	if !ok {
		p = &tcpPeer{}
		t.peers[peer] = p
	}
	t.mu.Unlock()

	p.mu.Lock()
	defer p.mu.Unlock()
	backoff := t.opts.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= t.opts.Retries; attempt++ {
		if attempt > 0 {
			//lint:ignore rfhlint/nowallclock bounded retry backoff on a real socket; not simulation state
			time.Sleep(backoff)
			backoff *= 2
			// The transport may have closed while we were backing off.
			t.mu.Lock()
			closed := t.closed
			t.mu.Unlock()
			if closed {
				return nil, ErrClosed
			}
		}
		resp, err := t.exchange(p, peer, req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		// A broken pooled connection is not reusable: drop it so the
		// next attempt redials.
		if p.conn != nil {
			p.conn.Close()
			p.conn, p.br = nil, nil
		}
	}
	return nil, fmt.Errorf("%w: %s after %d attempts: %v", ErrUnreachable, peer, t.opts.Retries+1, lastErr)
}

// exchange performs one framed request/response on the peer's pooled
// connection, dialling if necessary. Caller holds p.mu.
func (t *TCP) exchange(p *tcpPeer, peer string, req *Message) (*Message, error) {
	if p.conn == nil {
		conn, err := net.DialTimeout("tcp", peer, t.opts.DialTimeout)
		if err != nil {
			return nil, err
		}
		p.conn = conn
		p.br = bufio.NewReader(conn)
	}
	//lint:ignore rfhlint/nowallclock real-socket I/O deadline; not simulation state
	deadline := time.Now().Add(t.opts.IOTimeout)
	if err := p.conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if err := WriteFrame(p.conn, req); err != nil {
		return nil, err
	}
	return ReadFrame(p.br)
}

// Close implements Transport: stops the listener, drops pooled and
// inbound connections, and waits for the serving goroutines.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	peers := make([]*tcpPeer, 0, len(t.peers))
	//lint:ignore rfhlint/detrange collecting connections to close; order does not affect any state
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	//lint:ignore rfhlint/detrange collecting connections to close; order does not affect any state
	for conn := range t.inbound {
		conn.Close()
	}
	t.mu.Unlock()
	if t.ln != nil {
		t.ln.Close()
	}
	for _, p := range peers {
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
			p.conn, p.br = nil, nil
		}
		p.mu.Unlock()
	}
	t.wg.Wait()
	return nil
}
