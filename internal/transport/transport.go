// Package transport is the message plane of the live cluster runtime:
// a pluggable request/response transport carrying the node protocol's
// binary messages between peers.
//
// Two implementations are provided. Loopback wires endpoints together
// in-process with synchronous delivery — every Send round-trips
// through the binary codec but never leaves the process, so seeded
// multi-node tests are deterministic and race-clean. TCP speaks the
// same length-prefixed frames over real sockets with per-peer
// connection reuse, dial/read timeouts, and bounded retry with
// backoff, and is what cmd/rfhnode serves.
//
// The transport is deliberately dumb: it moves one Message and returns
// one Message. Request routing, replica placement and membership are
// the node layer's business (internal/node); the simulation engine
// never touches this package.
package transport

import "errors"

// Errors shared by the implementations. Callers branch on these with
// errors.Is; anything else is an I/O failure from the underlying
// medium.
var (
	// ErrClosed reports an operation on a closed transport.
	ErrClosed = errors.New("transport: closed")
	// ErrUnreachable reports that the peer could not be contacted (it
	// is down, partitioned away, or was never registered).
	ErrUnreachable = errors.New("transport: peer unreachable")
)

// Handler serves one inbound request. It runs on the transport's
// receive path (the caller's goroutine for Loopback, a connection
// goroutine for TCP), so implementations must be safe for concurrent
// use and must not block indefinitely. A nil response with a nil error
// is answered as an empty OK message; a non-nil error is delivered to
// the sender as a StatusError reply carrying the error text.
type Handler func(from string, req *Message) (*Message, error)

// Transport is one endpoint of the message plane. Implementations are
// safe for concurrent Sends.
type Transport interface {
	// Addr returns the address peers use to reach this endpoint (a
	// registered name for Loopback, host:port for TCP).
	Addr() string
	// Send delivers req to the named peer and blocks for its reply.
	// Transport-level failures (unreachable, timeout after retries)
	// return an error; application-level failures come back as a
	// Message with a non-OK Status.
	Send(peer string, req *Message) (*Message, error)
	// SetHandler installs the inbound request handler. It must be
	// called before the first request arrives; endpoints answer
	// requests received with no handler installed as StatusError.
	SetHandler(h Handler)
	// Close releases the endpoint: the listener stops, pooled
	// connections drop, and further Sends fail with ErrClosed.
	Close() error
}
