package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// echoHandler replies with the request's key/value swapped, tagging
// the partition so tests can see the handler ran.
func echoHandler(from string, req *Message) (*Message, error) {
	return &Message{Kind: req.Kind, Partition: req.Partition + 1, Key: req.Value, Value: req.Key}, nil
}

// transportPair builds two connected endpoints of the given flavour
// and returns them plus the peer address of the second.
func transportPair(t *testing.T, flavour string) (a, b Transport, bAddr string) {
	t.Helper()
	switch flavour {
	case "loopback":
		lb := NewLoopback()
		a, b = lb.Endpoint("a"), lb.Endpoint("b")
		bAddr = "b"
	case "tcp":
		var err error
		a, err = ListenTCP("127.0.0.1:0", nil, TCPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err = ListenTCP("127.0.0.1:0", nil, TCPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		bAddr = b.Addr()
	default:
		t.Fatalf("unknown flavour %q", flavour)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b, bAddr
}

func TestSendRoundTrip(t *testing.T) {
	for _, flavour := range []string{"loopback", "tcp"} {
		t.Run(flavour, func(t *testing.T) {
			a, b, bAddr := transportPair(t, flavour)
			b.SetHandler(echoHandler)
			req := &Message{Kind: 9, Partition: 41, Key: []byte("ping"), Value: []byte("pong")}
			resp, err := a.Send(bAddr, req)
			if err != nil {
				t.Fatal(err)
			}
			if resp.Partition != 42 || string(resp.Key) != "pong" || string(resp.Value) != "ping" {
				t.Fatalf("bad echo: %+v", resp)
			}
		})
	}
}

func TestHandlerErrorBecomesStatusError(t *testing.T) {
	for _, flavour := range []string{"loopback", "tcp"} {
		t.Run(flavour, func(t *testing.T) {
			a, b, bAddr := transportPair(t, flavour)
			b.SetHandler(func(string, *Message) (*Message, error) {
				return nil, errors.New("kaput")
			})
			resp, err := a.Send(bAddr, &Message{Kind: 3})
			if err != nil {
				t.Fatal(err)
			}
			if resp.Status != StatusError || resp.Err() == nil {
				t.Fatalf("handler error not surfaced: %+v", resp)
			}
		})
	}
}

func TestNilHandlerAnswersError(t *testing.T) {
	for _, flavour := range []string{"loopback", "tcp"} {
		t.Run(flavour, func(t *testing.T) {
			a, _, bAddr := transportPair(t, flavour)
			resp, err := a.Send(bAddr, &Message{Kind: 3})
			if err != nil {
				t.Fatal(err)
			}
			if resp.Status != StatusError {
				t.Fatalf("no-handler endpoint answered %+v", resp)
			}
		})
	}
}

func TestConcurrentSends(t *testing.T) {
	for _, flavour := range []string{"loopback", "tcp"} {
		t.Run(flavour, func(t *testing.T) {
			a, b, bAddr := transportPair(t, flavour)
			b.SetHandler(echoHandler)
			var wg sync.WaitGroup
			errs := make(chan error, 64)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 8; i++ {
						key := fmt.Sprintf("g%d-%d", g, i)
						resp, err := a.Send(bAddr, &Message{Kind: 1, Value: []byte(key)})
						if err != nil {
							errs <- err
							return
						}
						if string(resp.Key) != key {
							errs <- fmt.Errorf("wrong reply %q for %q", resp.Key, key)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

func TestLoopbackPartition(t *testing.T) {
	lb := NewLoopback()
	a, b := lb.Endpoint("a"), lb.Endpoint("b")
	defer a.Close()
	defer b.Close()
	b.SetHandler(echoHandler)
	if _, err := a.Send("b", &Message{}); err != nil {
		t.Fatal(err)
	}
	lb.SetDown("b", true)
	if _, err := a.Send("b", &Message{}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("partitioned peer reachable: %v", err)
	}
	lb.SetDown("b", false)
	if _, err := a.Send("b", &Message{}); err != nil {
		t.Fatalf("healed peer unreachable: %v", err)
	}
	if _, err := a.Send("ghost", &Message{}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("unregistered peer reachable: %v", err)
	}
}

func TestSendAfterClose(t *testing.T) {
	for _, flavour := range []string{"loopback", "tcp"} {
		t.Run(flavour, func(t *testing.T) {
			a, b, bAddr := transportPair(t, flavour)
			b.SetHandler(echoHandler)
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := a.Send(bAddr, &Message{}); !errors.Is(err, ErrClosed) {
				t.Fatalf("send on closed transport: %v", err)
			}
		})
	}
}

func TestTCPUnreachablePeer(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0", nil, TCPOptions{
		DialTimeout: 200 * time.Millisecond, IOTimeout: 200 * time.Millisecond,
		Retries: 1, RetryBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Port 1 on localhost refuses connections.
	if _, err := a.Send("127.0.0.1:1", &Message{}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("dead peer did not yield ErrUnreachable: %v", err)
	}
}

func TestTCPReconnectsAfterPeerRestart(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0", nil, TCPOptions{Retries: 3, RetryBackoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0", echoHandler, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bAddr := b.Addr()
	if _, err := a.Send(bAddr, &Message{Value: []byte("one")}); err != nil {
		t.Fatal(err)
	}
	// Restart the peer on the same port; the pooled connection is now
	// dead and Send must transparently redial.
	b.Close()
	b2, err := ListenTCP(bAddr, echoHandler, TCPOptions{})
	if err != nil {
		t.Skipf("could not rebind %s: %v", bAddr, err)
	}
	defer b2.Close()
	resp, err := a.Send(bAddr, &Message{Value: []byte("two")})
	if err != nil {
		t.Fatalf("send after peer restart: %v", err)
	}
	if string(resp.Key) != "two" {
		t.Fatalf("bad reply after restart: %+v", resp)
	}
}
