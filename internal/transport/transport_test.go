package transport

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// echoHandler replies with the request's key/value swapped, tagging
// the partition so tests can see the handler ran.
func echoHandler(from string, req *Message) (*Message, error) {
	return &Message{Kind: req.Kind, Partition: req.Partition + 1, Key: req.Value, Value: req.Key}, nil
}

// transportPair builds two connected endpoints of the given flavour
// and returns them plus the peer address of the second.
func transportPair(t *testing.T, flavour string) (a, b Transport, bAddr string) {
	t.Helper()
	switch flavour {
	case "loopback":
		lb := NewLoopback()
		a, b = lb.Endpoint("a"), lb.Endpoint("b")
		bAddr = "b"
	case "tcp":
		var err error
		a, err = ListenTCP("127.0.0.1:0", nil, TCPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err = ListenTCP("127.0.0.1:0", nil, TCPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		bAddr = b.Addr()
	default:
		t.Fatalf("unknown flavour %q", flavour)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b, bAddr
}

func TestSendRoundTrip(t *testing.T) {
	for _, flavour := range []string{"loopback", "tcp"} {
		t.Run(flavour, func(t *testing.T) {
			a, b, bAddr := transportPair(t, flavour)
			b.SetHandler(echoHandler)
			req := &Message{Kind: 9, Partition: 41, Key: []byte("ping"), Value: []byte("pong")}
			resp, err := a.Send(bAddr, req)
			if err != nil {
				t.Fatal(err)
			}
			if resp.Partition != 42 || string(resp.Key) != "pong" || string(resp.Value) != "ping" {
				t.Fatalf("bad echo: %+v", resp)
			}
		})
	}
}

func TestHandlerErrorBecomesStatusError(t *testing.T) {
	for _, flavour := range []string{"loopback", "tcp"} {
		t.Run(flavour, func(t *testing.T) {
			a, b, bAddr := transportPair(t, flavour)
			b.SetHandler(func(string, *Message) (*Message, error) {
				return nil, errors.New("kaput")
			})
			resp, err := a.Send(bAddr, &Message{Kind: 3})
			if err != nil {
				t.Fatal(err)
			}
			if resp.Status != StatusError || resp.Err() == nil {
				t.Fatalf("handler error not surfaced: %+v", resp)
			}
		})
	}
}

func TestNilHandlerAnswersError(t *testing.T) {
	for _, flavour := range []string{"loopback", "tcp"} {
		t.Run(flavour, func(t *testing.T) {
			a, _, bAddr := transportPair(t, flavour)
			resp, err := a.Send(bAddr, &Message{Kind: 3})
			if err != nil {
				t.Fatal(err)
			}
			if resp.Status != StatusError {
				t.Fatalf("no-handler endpoint answered %+v", resp)
			}
		})
	}
}

func TestConcurrentSends(t *testing.T) {
	for _, flavour := range []string{"loopback", "tcp"} {
		t.Run(flavour, func(t *testing.T) {
			a, b, bAddr := transportPair(t, flavour)
			b.SetHandler(echoHandler)
			var wg sync.WaitGroup
			errs := make(chan error, 64)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 8; i++ {
						key := fmt.Sprintf("g%d-%d", g, i)
						resp, err := a.Send(bAddr, &Message{Kind: 1, Value: []byte(key)})
						if err != nil {
							errs <- err
							return
						}
						if string(resp.Key) != key {
							errs <- fmt.Errorf("wrong reply %q for %q", resp.Key, key)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

func TestLoopbackPartition(t *testing.T) {
	lb := NewLoopback()
	a, b := lb.Endpoint("a"), lb.Endpoint("b")
	defer a.Close()
	defer b.Close()
	b.SetHandler(echoHandler)
	if _, err := a.Send("b", &Message{}); err != nil {
		t.Fatal(err)
	}
	lb.SetDown("b", true)
	if _, err := a.Send("b", &Message{}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("partitioned peer reachable: %v", err)
	}
	lb.SetDown("b", false)
	if _, err := a.Send("b", &Message{}); err != nil {
		t.Fatalf("healed peer unreachable: %v", err)
	}
	if _, err := a.Send("ghost", &Message{}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("unregistered peer reachable: %v", err)
	}
}

func TestSendAfterClose(t *testing.T) {
	for _, flavour := range []string{"loopback", "tcp"} {
		t.Run(flavour, func(t *testing.T) {
			a, b, bAddr := transportPair(t, flavour)
			b.SetHandler(echoHandler)
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := a.Send(bAddr, &Message{}); !errors.Is(err, ErrClosed) {
				t.Fatalf("send on closed transport: %v", err)
			}
		})
	}
}

func TestTCPUnreachablePeer(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0", nil, TCPOptions{
		DialTimeout: 200 * time.Millisecond, IOTimeout: 200 * time.Millisecond,
		Retries: 1, RetryBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Port 1 on localhost refuses connections.
	if _, err := a.Send("127.0.0.1:1", &Message{}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("dead peer did not yield ErrUnreachable: %v", err)
	}
}

// TestMuxManyInFlight is the multiplexing correctness test: many
// goroutines issue Sends to the same peer concurrently, every reply
// must match its request (the correlation ID is the only thing tying
// them together once responses complete out of order), and on TCP the
// whole storm must ride a single connection.
func TestMuxManyInFlight(t *testing.T) {
	for _, flavour := range []string{"loopback", "tcp"} {
		t.Run(flavour, func(t *testing.T) {
			a, b, bAddr := transportPair(t, flavour)
			// Stagger handler latency so responses complete out of
			// request order and correlation is actually exercised.
			b.SetHandler(func(from string, req *Message) (*Message, error) {
				if req.Partition%7 == 0 {
					time.Sleep(time.Duration(req.Partition%3) * time.Millisecond)
				}
				return &Message{Kind: req.Kind, Key: req.Value, Value: req.Key}, nil
			})
			var wg sync.WaitGroup
			errs := make(chan error, 32)
			for g := 0; g < 32; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 16; i++ {
						key := fmt.Sprintf("g%d-%d", g, i)
						resp, err := a.Send(bAddr, &Message{Kind: 1, Partition: uint32(g*16 + i), Value: []byte(key)})
						if err != nil {
							errs <- err
							return
						}
						if string(resp.Key) != key {
							errs <- fmt.Errorf("wrong reply %q for %q", resp.Key, key)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if tb, ok := b.(*TCP); ok {
				tb.mu.Lock()
				conns := len(tb.inbound)
				tb.mu.Unlock()
				if conns != 1 {
					t.Fatalf("512 concurrent sends used %d connections, want 1 (multiplexed)", conns)
				}
			}
		})
	}
}

// TestGoroutineLeakAfterClose drives concurrent traffic over a TCP
// pair and asserts that Close reaps every transport goroutine — the
// accept loop, the per-connection reader/writer pairs on both sides,
// and the request workers.
func TestGoroutineLeakAfterClose(t *testing.T) {
	before := runtime.NumGoroutine()
	a, err := ListenTCP("127.0.0.1:0", nil, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ListenTCP("127.0.0.1:0", echoHandler, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := a.Send(b.Addr(), &Message{Kind: 1, Value: []byte("x")}); err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Close waits on each transport's WaitGroup, so only runtime
	// stragglers (netpoll, timer goroutines) may still be winding down.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after Close: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCloseCancelsRetryBackoff pins the satellite fix: a Send stuck in
// its retry backoff must abort as soon as the transport closes, not
// wait the backoff out. With 1s backoffs doubling over 5 retries the
// serialized sleeps would exceed 30s; the test demands completion in a
// fraction of the first backoff.
func TestCloseCancelsRetryBackoff(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0", nil, TCPOptions{
		DialTimeout: 100 * time.Millisecond, IOTimeout: 100 * time.Millisecond,
		Retries: 5, RetryBackoff: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := a.Send("127.0.0.1:1", &Message{}) // refused port: every attempt fails
		done <- err
	}()
	time.Sleep(150 * time.Millisecond) // let the first attempt fail and the backoff start
	start := time.Now()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("send during close returned %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Send still blocked 2s after Close")
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("Close took %v to cancel a backing-off Send", elapsed)
	}
}

// TestSendTimeoutKillsConnection exercises the mux timeout path: a
// handler that never answers within IOTimeout must fail the Send, and
// the next Send must succeed over a fresh connection.
func TestSendTimeoutKillsConnection(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	b, err := ListenTCP("127.0.0.1:0", func(from string, req *Message) (*Message, error) {
		if req.Kind == 1 {
			<-release // hold the first request hostage
		}
		return &Message{Kind: req.Kind}, nil
	}, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	defer func() { once.Do(func() { close(release) }) }()
	a, err := ListenTCP("127.0.0.1:0", nil, TCPOptions{
		IOTimeout: 150 * time.Millisecond, Retries: 0, RetryBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := a.Send(b.Addr(), &Message{Kind: 1}); err == nil {
		t.Fatal("send with a stalled handler did not time out")
	}
	once.Do(func() { close(release) })
	if _, err := a.Send(b.Addr(), &Message{Kind: 2}); err != nil {
		t.Fatalf("send after a timed-out exchange failed: %v", err)
	}
}

func TestTCPReconnectsAfterPeerRestart(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0", nil, TCPOptions{Retries: 3, RetryBackoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0", echoHandler, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bAddr := b.Addr()
	if _, err := a.Send(bAddr, &Message{Value: []byte("one")}); err != nil {
		t.Fatal(err)
	}
	// Restart the peer on the same port; the pooled connection is now
	// dead and Send must transparently redial.
	b.Close()
	b2, err := ListenTCP(bAddr, echoHandler, TCPOptions{})
	if err != nil {
		t.Skipf("could not rebind %s: %v", bAddr, err)
	}
	defer b2.Close()
	resp, err := a.Send(bAddr, &Message{Value: []byte("two")})
	if err != nil {
		t.Fatalf("send after peer restart: %v", err)
	}
	if string(resp.Key) != "two" {
		t.Fatalf("bad reply after restart: %+v", resp)
	}
}
