package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/stats"
	"repro/internal/topology"
)

// Diurnal models the day/night wave of a global service: each
// datacenter's share of the demand oscillates sinusoidally with a
// phase offset proportional to its longitude (the world X coordinate),
// so the "busy region" sweeps around the planet once per period. This
// is the smooth, predictable cousin of the flash crowd — policies that
// only react to step changes handle it differently from policies that
// track gradients.
type Diurnal struct {
	cfg    Config
	period int
	depth  float64 // 0..1: how far the wave modulates a DC's share
	phase  []float64
	base   *stats.RNG
}

var _ Generator = (*Diurnal)(nil)

// NewDiurnal builds a diurnal generator over the world's datacenters.
// period is the wave length in epochs; depth in (0, 1] scales the
// modulation (1 = a datacenter's share swings between 0 and twice its
// fair share).
func NewDiurnal(cfg Config, w *topology.World, period int, depth float64) (*Diurnal, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if w.NumDCs() != cfg.DCs {
		return nil, fmt.Errorf("workload: world has %d DCs, config says %d", w.NumDCs(), cfg.DCs)
	}
	if period < 2 {
		return nil, fmt.Errorf("workload: diurnal period %d too short", period)
	}
	if depth <= 0 || depth > 1 {
		return nil, fmt.Errorf("workload: diurnal depth %g outside (0,1]", depth)
	}
	// Phase offsets from map longitude: the wave travels west→east.
	minX, maxX := math.Inf(1), math.Inf(-1)
	for i := 0; i < w.NumDCs(); i++ {
		x := w.DC(topology.DCID(i)).X
		minX = math.Min(minX, x)
		maxX = math.Max(maxX, x)
	}
	span := maxX - minX
	if span == 0 {
		span = 1
	}
	// Spread phases over half a cycle so the west-most and east-most
	// datacenters peak half a period apart (a full 2π span would alias
	// the extremes onto the same phase).
	phase := make([]float64, w.NumDCs())
	for i := range phase {
		phase[i] = math.Pi * (w.DC(topology.DCID(i)).X - minX) / span
	}
	return &Diurnal{cfg: cfg, period: period, depth: depth, phase: phase, base: stats.NewRNG(cfg.Seed)}, nil
}

// Name implements Generator.
func (g *Diurnal) Name() string { return "diurnal" }

// Share returns datacenter d's demand weight at epoch t (mean 1).
func (g *Diurnal) Share(t int, d int) float64 {
	angle := 2*math.Pi*float64(t)/float64(g.period) - g.phase[d]
	return 1 + g.depth*math.Sin(angle)
}

// Epoch implements Generator.
func (g *Diurnal) Epoch(t int) *Matrix {
	if t < 0 {
		panic("workload: negative epoch")
	}
	// Build the epoch's DC weight distribution.
	weights := make([]float64, g.cfg.DCs)
	sum := 0.0
	for d := range weights {
		weights[d] = g.Share(t, d)
		sum += weights[d]
	}
	cdf := make([]float64, g.cfg.DCs)
	acc := 0.0
	for d, w := range weights {
		acc += w / sum
		cdf[d] = acc
	}
	m := NewMatrix(g.cfg.Partitions, g.cfg.DCs)
	for p := 0; p < g.cfg.Partitions; p++ {
		rng := g.base.Stream(uint64(t)<<20 | uint64(p))
		n := rng.Poisson(g.cfg.Lambda)
		for q := 0; q < n; q++ {
			u := rng.Float64()
			dc := 0
			for dc < len(cdf)-1 && cdf[dc] < u {
				dc++
			}
			m.Q[p][dc]++
		}
	}
	return m
}

// Drift moves a single hot region one datacenter at a time every
// holdEpochs, wrapping around the id space — a slow-motion flash crowd
// that exercises migration churn without the paper's step
// discontinuities.
type Drift struct {
	cfg        Config
	holdEpochs int
	hotFrac    float64
	base       *stats.RNG
}

var _ Generator = (*Drift)(nil)

// NewDrift builds a drifting-hotspot generator: hotFrac of all queries
// come from the current hot datacenter, which advances every
// holdEpochs.
func NewDrift(cfg Config, holdEpochs int, hotFrac float64) (*Drift, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if holdEpochs < 1 {
		return nil, fmt.Errorf("workload: drift hold %d too short", holdEpochs)
	}
	if hotFrac <= 0 || hotFrac > 1 {
		return nil, fmt.Errorf("workload: drift hot fraction %g outside (0,1]", hotFrac)
	}
	return &Drift{cfg: cfg, holdEpochs: holdEpochs, hotFrac: hotFrac, base: stats.NewRNG(cfg.Seed)}, nil
}

// Name implements Generator.
func (g *Drift) Name() string { return "drift" }

// HotDC returns the hot datacenter at epoch t.
func (g *Drift) HotDC(t int) topology.DCID {
	return topology.DCID((t / g.holdEpochs) % g.cfg.DCs)
}

// Epoch implements Generator.
func (g *Drift) Epoch(t int) *Matrix {
	if t < 0 {
		panic("workload: negative epoch")
	}
	hot := int(g.HotDC(t))
	m := NewMatrix(g.cfg.Partitions, g.cfg.DCs)
	for p := 0; p < g.cfg.Partitions; p++ {
		rng := g.base.Stream(uint64(t)<<20 | uint64(p))
		n := rng.Poisson(g.cfg.Lambda)
		for q := 0; q < n; q++ {
			if rng.Bool(g.hotFrac) {
				m.Q[p][hot]++
			} else {
				m.Q[p][rng.Intn(g.cfg.DCs)]++
			}
		}
	}
	return m
}

// Trace replays demand matrices loaded from CSV, cycling when the
// simulation outlives the trace. The CSV format is one row per
// (epoch, partition): epoch, partition, q_dc0, q_dc1, ..., matching
// what trace-collection tooling would export from production logs —
// the "real business cases" the paper's future work points to.
type Trace struct {
	name   string
	epochs []*Matrix
}

var _ Generator = (*Trace)(nil)

// NewTrace parses a demand trace. All epochs must be dense: every
// (epoch, partition) pair present, epochs contiguous from 0.
func NewTrace(name string, r io.Reader, partitions, dcs int) (*Trace, error) {
	if partitions <= 0 || dcs <= 0 {
		return nil, fmt.Errorf("workload: trace dimensions (%d,%d) invalid", partitions, dcs)
	}
	rows, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: trace parse: %w", err)
	}
	if len(rows)%partitions != 0 || len(rows) == 0 {
		return nil, fmt.Errorf("workload: trace has %d rows, not a multiple of %d partitions", len(rows), partitions)
	}
	numEpochs := len(rows) / partitions
	tr := &Trace{name: name, epochs: make([]*Matrix, numEpochs)}
	for e := range tr.epochs {
		tr.epochs[e] = NewMatrix(partitions, dcs)
	}
	for _, row := range rows {
		if len(row) != 2+dcs {
			return nil, fmt.Errorf("workload: trace row has %d fields, want %d", len(row), 2+dcs)
		}
		e, err := strconv.Atoi(row[0])
		if err != nil || e < 0 || e >= numEpochs {
			return nil, fmt.Errorf("workload: trace epoch %q invalid", row[0])
		}
		p, err := strconv.Atoi(row[1])
		if err != nil || p < 0 || p >= partitions {
			return nil, fmt.Errorf("workload: trace partition %q invalid", row[1])
		}
		for d := 0; d < dcs; d++ {
			q, err := strconv.Atoi(row[2+d])
			if err != nil || q < 0 {
				return nil, fmt.Errorf("workload: trace cell %q invalid", row[2+d])
			}
			tr.epochs[e].Q[p][d] = q
		}
	}
	return tr, nil
}

// Name implements Generator.
func (t *Trace) Name() string { return t.name }

// Len returns the number of epochs in the trace before it cycles.
func (t *Trace) Len() int { return len(t.epochs) }

// Epoch implements Generator, cycling past the trace end.
func (t *Trace) Epoch(e int) *Matrix {
	if e < 0 {
		panic("workload: negative epoch")
	}
	return t.epochs[e%len(t.epochs)]
}
