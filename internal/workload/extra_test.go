package workload

import (
	"math"
	"strings"
	"testing"

	"repro/internal/topology"
)

func TestDiurnalValidation(t *testing.T) {
	cfg := testConfig()
	w := topology.PaperWorld()
	if _, err := NewDiurnal(cfg, w, 1, 0.5); err == nil {
		t.Fatal("period 1 accepted")
	}
	if _, err := NewDiurnal(cfg, w, 100, 0); err == nil {
		t.Fatal("depth 0 accepted")
	}
	if _, err := NewDiurnal(cfg, w, 100, 1.5); err == nil {
		t.Fatal("depth > 1 accepted")
	}
	bad := cfg
	bad.DCs = 7
	if _, err := NewDiurnal(bad, w, 100, 0.5); err == nil {
		t.Fatal("mismatched DC count accepted")
	}
}

func TestDiurnalWaveSweeps(t *testing.T) {
	cfg := testConfig()
	w := topology.PaperWorld()
	g, err := NewDiurnal(cfg, w, 100, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "diurnal" {
		t.Fatal("name")
	}
	// Share oscillates around 1 with the configured depth.
	minS, maxS := math.Inf(1), math.Inf(-1)
	for e := 0; e < 100; e++ {
		s := g.Share(e, 0)
		minS = math.Min(minS, s)
		maxS = math.Max(maxS, s)
	}
	if math.Abs(minS-0.1) > 0.05 || math.Abs(maxS-1.9) > 0.05 {
		t.Fatalf("share range [%g, %g], want ~[0.1, 1.9]", minS, maxS)
	}
	// The west-most DC (A) and the east-most (I) must peak at different
	// epochs: the wave travels.
	a, _ := w.DCByName("A")
	i, _ := w.DCByName("I")
	peakA, peakI, bestA, bestI := 0, 0, 0.0, 0.0
	for e := 0; e < 100; e++ {
		if s := g.Share(e, int(a.ID)); s > bestA {
			bestA, peakA = s, e
		}
		if s := g.Share(e, int(i.ID)); s > bestI {
			bestI, peakI = s, e
		}
	}
	if peakA == peakI {
		t.Fatalf("A and I peak at the same epoch %d: no phase sweep", peakA)
	}
}

func TestDiurnalVolumeAndDeterminism(t *testing.T) {
	cfg := testConfig()
	w := topology.PaperWorld()
	g1, _ := NewDiurnal(cfg, w, 50, 0.5)
	g2, _ := NewDiurnal(cfg, w, 50, 0.5)
	total := 0
	for e := 0; e < 50; e++ {
		m1, m2 := g1.Epoch(e), g2.Epoch(e)
		total += m1.Total()
		for p := range m1.Q {
			for d := range m1.Q[p] {
				if m1.Q[p][d] != m2.Q[p][d] {
					t.Fatal("diurnal not deterministic")
				}
			}
		}
	}
	want := cfg.Lambda * float64(cfg.Partitions) * 50
	if math.Abs(float64(total)-want)/want > 0.05 {
		t.Fatalf("diurnal volume %d, want ~%g", total, want)
	}
}

func TestDriftHotDCAdvances(t *testing.T) {
	cfg := testConfig()
	g, err := NewDrift(cfg, 10, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "drift" {
		t.Fatal("name")
	}
	if g.HotDC(0) != 0 || g.HotDC(9) != 0 || g.HotDC(10) != 1 || g.HotDC(105) != 0 {
		t.Fatalf("hot DC schedule wrong: %d %d %d %d", g.HotDC(0), g.HotDC(9), g.HotDC(10), g.HotDC(105))
	}
	// The hot DC actually receives ~hotFrac + uniform share.
	m := g.Epoch(15) // hot DC = 1
	hot, total := 0, 0
	for p := range m.Q {
		for d, q := range m.Q[p] {
			total += q
			if d == 1 {
				hot += q
			}
		}
	}
	frac := float64(hot) / float64(total)
	want := 0.8 + 0.2/10
	if math.Abs(frac-want) > 0.05 {
		t.Fatalf("hot share = %g, want ~%g", frac, want)
	}
}

func TestDriftValidation(t *testing.T) {
	cfg := testConfig()
	if _, err := NewDrift(cfg, 0, 0.5); err == nil {
		t.Fatal("hold 0 accepted")
	}
	if _, err := NewDrift(cfg, 10, 0); err == nil {
		t.Fatal("hot frac 0 accepted")
	}
	if _, err := NewDrift(cfg, 10, 1.5); err == nil {
		t.Fatal("hot frac > 1 accepted")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	// 2 epochs × 2 partitions × 3 DCs.
	csv := strings.NewReader(
		"0,0,1,2,3\n" +
			"0,1,4,5,6\n" +
			"1,0,7,8,9\n" +
			"1,1,10,11,12\n")
	tr, err := NewTrace("prod", csv, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name() != "prod" || tr.Len() != 2 {
		t.Fatalf("trace meta: %s %d", tr.Name(), tr.Len())
	}
	m := tr.Epoch(0)
	if m.Q[0][0] != 1 || m.Q[1][2] != 6 {
		t.Fatalf("epoch 0 = %v", m.Q)
	}
	m = tr.Epoch(1)
	if m.Q[0][1] != 8 || m.Q[1][0] != 10 {
		t.Fatalf("epoch 1 = %v", m.Q)
	}
	// Cycling: epoch 2 replays epoch 0.
	if tr.Epoch(2).Q[0][0] != 1 {
		t.Fatal("trace does not cycle")
	}
}

func TestTraceErrors(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"empty", ""},
		{"ragged", "0,0,1,2\n"},
		{"bad epoch", "x,0,1,2,3\n0,1,1,2,3\n"},
		{"bad partition", "0,9,1,2,3\n0,1,1,2,3\n"},
		{"negative cell", "0,0,-1,2,3\n0,1,1,2,3\n"},
		{"rows not multiple", "0,0,1,2,3\n0,1,1,2,3\n1,0,1,2,3\n"},
	}
	for _, c := range cases {
		if _, err := NewTrace("t", strings.NewReader(c.csv), 2, 3); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
	if _, err := NewTrace("t", strings.NewReader("0,0,1\n"), 0, 1); err == nil {
		t.Error("zero partitions accepted")
	}
}

func TestMixtureValidation(t *testing.T) {
	g, _ := NewUniform(testConfig())
	if _, err := NewMixture("m", nil, nil); err == nil {
		t.Fatal("empty mixture accepted")
	}
	if _, err := NewMixture("m", []Generator{g}, []int{1, 2}); err == nil {
		t.Fatal("mismatched weights accepted")
	}
	if _, err := NewMixture("m", []Generator{g}, []int{0}); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestMixtureSumsComponents(t *testing.T) {
	cfg := testConfig()
	a, _ := NewUniform(cfg)
	cfgB := cfg
	cfgB.Seed = 99
	b, _ := NewZipfPartitions(cfgB, 1.0)
	m, err := NewMixture("blend", []Generator{a, b}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "blend" {
		t.Fatal("name")
	}
	got := m.Epoch(3)
	wantA, wantB := a.Epoch(3), b.Epoch(3)
	for p := range got.Q {
		for d := range got.Q[p] {
			if got.Q[p][d] != wantA.Q[p][d]+2*wantB.Q[p][d] {
				t.Fatalf("mixture cell (%d,%d) = %d, want %d",
					p, d, got.Q[p][d], wantA.Q[p][d]+2*wantB.Q[p][d])
			}
		}
	}
}

func TestMixtureDimensionMismatchPanics(t *testing.T) {
	a, _ := NewUniform(testConfig())
	small := testConfig()
	small.Partitions = 2
	b, _ := NewUniform(small)
	m, _ := NewMixture("bad", []Generator{a, b}, []int{1, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch not caught")
		}
	}()
	m.Epoch(0)
}
