package workload

import "fmt"

// Mixture sums the demand of several generators, each scaled by an
// integer weight — e.g. a uniform base load with a Zipf-skewed hot set
// on top, the composite shape production traffic usually has.
type Mixture struct {
	name       string
	components []Generator
	weights    []int
}

var _ Generator = (*Mixture)(nil)

// NewMixture builds a mixture. Weights scale each component's matrix
// (weight 1 = unscaled); components must agree on dimensions, which is
// checked lazily at the first Epoch call.
func NewMixture(name string, components []Generator, weights []int) (*Mixture, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("workload: mixture needs at least one component")
	}
	if len(components) != len(weights) {
		return nil, fmt.Errorf("workload: %d components vs %d weights", len(components), len(weights))
	}
	for i, w := range weights {
		if w < 1 {
			return nil, fmt.Errorf("workload: weight %d of component %d must be >= 1", w, i)
		}
	}
	return &Mixture{name: name, components: components, weights: weights}, nil
}

// Name implements Generator.
func (m *Mixture) Name() string { return m.name }

// Epoch implements Generator.
func (m *Mixture) Epoch(t int) *Matrix {
	var out *Matrix
	for i, g := range m.components {
		part := g.Epoch(t)
		if out == nil {
			out = NewMatrix(part.Partitions(), part.DCs())
		}
		if part.Partitions() != out.Partitions() || part.DCs() != out.DCs() {
			panic(fmt.Sprintf("workload: mixture component %d has dimensions %dx%d, want %dx%d",
				i, part.Partitions(), part.DCs(), out.Partitions(), out.DCs()))
		}
		for p := range part.Q {
			for d, q := range part.Q[p] {
				out.Q[p][d] += q * m.weights[i]
			}
		}
	}
	return out
}
