// Package workload generates the per-epoch query load of §III-A: each
// partition receives a Poisson(λ) number of queries per epoch, and each
// query originates from a requester datacenter drawn from a stage-
// dependent geographic distribution. The two settings evaluated in the
// paper are provided — the random/even setting and the four-stage flash
// crowd — plus Zipf-skewed and custom mixtures as extensions.
package workload

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/topology"
)

// Matrix holds one epoch of demand: Q[p][d] is the number of queries
// for partition p issued by clients near datacenter d. This is the
// q_ijt of eq. (5) with i=p, j=d.
type Matrix struct {
	Q [][]int // [partition][requester DC]
}

// NewMatrix allocates a zero matrix for the given dimensions.
func NewMatrix(partitions, dcs int) *Matrix {
	q := make([][]int, partitions)
	buf := make([]int, partitions*dcs)
	for p := range q {
		q[p], buf = buf[:dcs], buf[dcs:]
	}
	return &Matrix{Q: q}
}

// Partitions returns the number of partitions in the matrix.
func (m *Matrix) Partitions() int { return len(m.Q) }

// DCs returns the number of requester datacenters.
func (m *Matrix) DCs() int {
	if len(m.Q) == 0 {
		return 0
	}
	return len(m.Q[0])
}

// PartitionTotal returns the total queries for partition p this epoch —
// the numerator of the system average query, eq. (9).
func (m *Matrix) PartitionTotal(p int) int {
	total := 0
	for _, q := range m.Q[p] {
		total += q
	}
	return total
}

// Total returns all queries in the epoch.
func (m *Matrix) Total() int {
	total := 0
	for p := range m.Q {
		total += m.PartitionTotal(p)
	}
	return total
}

// Generator produces one demand matrix per epoch. Implementations must
// be deterministic: the same (seed, epoch) yields the same matrix.
type Generator interface {
	// Name identifies the workload in results and traces.
	Name() string
	// Epoch returns the demand matrix for epoch t (0-based).
	Epoch(t int) *Matrix
}

// Config carries the dimensions and intensity shared by all generators.
type Config struct {
	Partitions int
	DCs        int
	// Lambda is the Poisson mean of queries per partition per epoch
	// (Table I: 300).
	Lambda float64
	Seed   uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Partitions <= 0:
		return fmt.Errorf("workload: partitions must be positive")
	case c.DCs <= 0:
		return fmt.Errorf("workload: DCs must be positive")
	case c.Lambda < 0:
		return fmt.Errorf("workload: lambda must be non-negative")
	}
	return nil
}

// Stage describes one phase of a staged workload: until epoch
// UntilEpoch (exclusive), a HotFraction share of queries originates
// from the HotDCs; the remainder (or everything, when HotDCs is empty)
// is spread uniformly over all datacenters.
type Stage struct {
	UntilEpoch  int
	HotDCs      []topology.DCID
	HotFraction float64
}

// Staged is a Generator that switches geographic distributions at stage
// boundaries. With a single unbounded stage and no hot set it is the
// paper's "random and even" setting; with the four paper stages it is
// the flash-crowd setting.
type Staged struct {
	name   string
	cfg    Config
	stages []Stage
	base   *stats.RNG
}

var _ Generator = (*Staged)(nil)

// NewStaged builds a staged generator. Stages must be non-empty and
// ordered by strictly increasing UntilEpoch; the final stage's bound is
// ignored (it extends forever). HotFractions must lie in [0,1] and hot
// DC ids inside the configured range.
func NewStaged(name string, cfg Config, stages []Stage) (*Staged, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf("workload: need at least one stage")
	}
	for i, st := range stages {
		if i > 0 && st.UntilEpoch <= stages[i-1].UntilEpoch {
			return nil, fmt.Errorf("workload: stage %d bound %d not increasing", i, st.UntilEpoch)
		}
		if st.HotFraction < 0 || st.HotFraction > 1 {
			return nil, fmt.Errorf("workload: stage %d hot fraction %g outside [0,1]", i, st.HotFraction)
		}
		if len(st.HotDCs) == 0 && st.HotFraction > 0 {
			return nil, fmt.Errorf("workload: stage %d has hot fraction without hot DCs", i)
		}
		for _, dc := range st.HotDCs {
			if int(dc) < 0 || int(dc) >= cfg.DCs {
				return nil, fmt.Errorf("workload: stage %d hot DC %d out of range", i, dc)
			}
		}
	}
	return &Staged{name: name, cfg: cfg, stages: stages, base: stats.NewRNG(cfg.Seed)}, nil
}

// Name implements Generator.
func (g *Staged) Name() string { return g.name }

// StageAt returns the stage index active at epoch t.
func (g *Staged) StageAt(t int) int {
	for i, st := range g.stages[:len(g.stages)-1] {
		if t < st.UntilEpoch {
			return i
		}
	}
	return len(g.stages) - 1
}

// Epoch implements Generator. Each (epoch, partition) pair draws from
// its own derived RNG stream, so matrices are reproducible even if
// partitions are generated in parallel or out of order.
func (g *Staged) Epoch(t int) *Matrix {
	if t < 0 {
		panic("workload: negative epoch")
	}
	st := g.stages[g.StageAt(t)]
	m := NewMatrix(g.cfg.Partitions, g.cfg.DCs)
	for p := 0; p < g.cfg.Partitions; p++ {
		rng := g.base.Stream(uint64(t)<<20 | uint64(p))
		n := rng.Poisson(g.cfg.Lambda)
		for q := 0; q < n; q++ {
			var dc int
			if len(st.HotDCs) > 0 && rng.Bool(st.HotFraction) {
				dc = int(st.HotDCs[rng.Intn(len(st.HotDCs))])
			} else {
				dc = rng.Intn(g.cfg.DCs)
			}
			m.Q[p][dc]++
		}
	}
	return m
}

// NewUniform builds the paper's "random and even" query setting: every
// query's requester datacenter is uniform over all datacenters.
func NewUniform(cfg Config) (*Staged, error) {
	return NewStaged("uniform", cfg, []Stage{{}})
}

// hotGroup resolves datacenter names to ids, panicking on unknown names
// (the paper world always has A..J; a miss is a programming error).
func hotGroup(w *topology.World, names ...string) []topology.DCID {
	out := make([]topology.DCID, len(names))
	for i, n := range names {
		dc, ok := w.DCByName(n)
		if !ok {
			panic("workload: unknown datacenter " + n)
		}
		out[i] = dc.ID
	}
	return out
}

// NewPaperFlashCrowd builds the §III-A flash-crowd setting over the
// paper world: four equal stages across totalEpochs. Stage 1 sends 80%
// of queries from near H, I and J; stage 2 from near A, B and C; stage
// 3 from near E, F and G; stage 4 is random and even.
func NewPaperFlashCrowd(cfg Config, w *topology.World, totalEpochs int) (*Staged, error) {
	if totalEpochs < 4 {
		return nil, fmt.Errorf("workload: flash crowd needs at least 4 epochs, got %d", totalEpochs)
	}
	quarter := totalEpochs / 4
	stages := []Stage{
		{UntilEpoch: quarter, HotDCs: hotGroup(w, "H", "I", "J"), HotFraction: 0.8},
		{UntilEpoch: 2 * quarter, HotDCs: hotGroup(w, "A", "B", "C"), HotFraction: 0.8},
		{UntilEpoch: 3 * quarter, HotDCs: hotGroup(w, "E", "F", "G"), HotFraction: 0.8},
		{UntilEpoch: totalEpochs},
	}
	return NewStaged("flash-crowd", cfg, stages)
}
