package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func testConfig() Config {
	return Config{Partitions: 16, DCs: 10, Lambda: 100, Seed: 7}
}

func TestMatrixTotals(t *testing.T) {
	m := NewMatrix(3, 4)
	m.Q[0][1] = 5
	m.Q[2][3] = 7
	if m.PartitionTotal(0) != 5 || m.PartitionTotal(1) != 0 || m.PartitionTotal(2) != 7 {
		t.Fatal("partition totals wrong")
	}
	if m.Total() != 12 {
		t.Fatalf("total = %d", m.Total())
	}
	if m.Partitions() != 3 || m.DCs() != 4 {
		t.Fatal("dimensions wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Partitions: 0, DCs: 1, Lambda: 1},
		{Partitions: 1, DCs: 0, Lambda: 1},
		{Partitions: 1, DCs: 1, Lambda: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated", i)
		}
	}
	if err := testConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUniformMeanVolume(t *testing.T) {
	g, err := NewUniform(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	const epochs = 50
	for e := 0; e < epochs; e++ {
		total += g.Epoch(e).Total()
	}
	want := float64(16 * 100 * epochs)
	if got := float64(total); math.Abs(got-want)/want > 0.05 {
		t.Fatalf("uniform volume = %g, want ~%g", got, want)
	}
}

func TestUniformSpreadsAcrossDCs(t *testing.T) {
	g, _ := NewUniform(testConfig())
	counts := make([]int, 10)
	for e := 0; e < 30; e++ {
		m := g.Epoch(e)
		for p := range m.Q {
			for dc, q := range m.Q[p] {
				counts[dc] += q
			}
		}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	for dc, c := range counts {
		frac := float64(c) / float64(total)
		if math.Abs(frac-0.1) > 0.02 {
			t.Fatalf("DC %d receives %.3f of queries, want ~0.1", dc, frac)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1, _ := NewUniform(testConfig())
	g2, _ := NewUniform(testConfig())
	for e := 0; e < 5; e++ {
		m1, m2 := g1.Epoch(e), g2.Epoch(e)
		for p := range m1.Q {
			for dc := range m1.Q[p] {
				if m1.Q[p][dc] != m2.Q[p][dc] {
					t.Fatalf("epoch %d differs at (%d,%d)", e, p, dc)
				}
			}
		}
	}
	// Out-of-order and repeated access must give identical results.
	a := g1.Epoch(3)
	_ = g1.Epoch(0)
	b := g1.Epoch(3)
	for p := range a.Q {
		for dc := range a.Q[p] {
			if a.Q[p][dc] != b.Q[p][dc] {
				t.Fatal("Epoch(3) not stable across repeated calls")
			}
		}
	}
}

func TestStagedValidation(t *testing.T) {
	cfg := testConfig()
	if _, err := NewStaged("x", cfg, nil); err == nil {
		t.Fatal("empty stages accepted")
	}
	if _, err := NewStaged("x", cfg, []Stage{{UntilEpoch: 10}, {UntilEpoch: 5}}); err == nil {
		t.Fatal("non-increasing bounds accepted")
	}
	if _, err := NewStaged("x", cfg, []Stage{{HotFraction: 1.5, HotDCs: []topology.DCID{0}}}); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	if _, err := NewStaged("x", cfg, []Stage{{HotFraction: 0.5}}); err == nil {
		t.Fatal("hot fraction without hot DCs accepted")
	}
	if _, err := NewStaged("x", cfg, []Stage{{HotFraction: 0.5, HotDCs: []topology.DCID{99}}}); err == nil {
		t.Fatal("out-of-range hot DC accepted")
	}
}

func TestPaperFlashCrowdStages(t *testing.T) {
	cfg := testConfig()
	w := topology.PaperWorld()
	g, err := NewPaperFlashCrowd(cfg, w, 400)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "flash-crowd" {
		t.Fatalf("name = %s", g.Name())
	}
	if g.StageAt(0) != 0 || g.StageAt(99) != 0 || g.StageAt(100) != 1 ||
		g.StageAt(199) != 1 || g.StageAt(200) != 2 || g.StageAt(300) != 3 || g.StageAt(1000) != 3 {
		t.Fatal("stage boundaries wrong")
	}

	hotShare := func(epoch int, names ...string) float64 {
		hot := map[topology.DCID]bool{}
		for _, n := range names {
			dc, _ := w.DCByName(n)
			hot[dc.ID] = true
		}
		m := g.Epoch(epoch)
		hotQ, total := 0, 0
		for p := range m.Q {
			for dc, q := range m.Q[p] {
				total += q
				if hot[topology.DCID(dc)] {
					hotQ += q
				}
			}
		}
		return float64(hotQ) / float64(total)
	}
	// Stage 1: ~80% from H,I,J plus their uniform share (0.2 * 3/10).
	want := 0.8 + 0.2*0.3
	if got := hotShare(50, "H", "I", "J"); math.Abs(got-want) > 0.05 {
		t.Fatalf("stage 1 hot share = %.3f, want ~%.2f", got, want)
	}
	if got := hotShare(150, "A", "B", "C"); math.Abs(got-want) > 0.05 {
		t.Fatalf("stage 2 hot share = %.3f, want ~%.2f", got, want)
	}
	if got := hotShare(250, "E", "F", "G"); math.Abs(got-want) > 0.05 {
		t.Fatalf("stage 3 hot share = %.3f, want ~%.2f", got, want)
	}
	// Stage 4: uniform → H,I,J share ~0.3.
	if got := hotShare(350, "H", "I", "J"); math.Abs(got-0.3) > 0.05 {
		t.Fatalf("stage 4 share = %.3f, want ~0.3", got)
	}
}

func TestFlashCrowdTooFewEpochs(t *testing.T) {
	if _, err := NewPaperFlashCrowd(testConfig(), topology.PaperWorld(), 3); err == nil {
		t.Fatal("3-epoch flash crowd accepted")
	}
}

func TestEpochPanicsOnNegative(t *testing.T) {
	g, _ := NewUniform(testConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("negative epoch accepted")
		}
	}()
	g.Epoch(-1)
}

func TestZipfPartitionsSkew(t *testing.T) {
	g, err := NewZipfPartitions(testConfig(), 1.2)
	if err != nil {
		t.Fatal(err)
	}
	hot, cold := 0, 0
	for e := 0; e < 20; e++ {
		m := g.Epoch(e)
		hot += m.PartitionTotal(0)
		cold += m.PartitionTotal(15)
	}
	if hot < cold*4 {
		t.Fatalf("zipf skew too weak: hot=%d cold=%d", hot, cold)
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipfPartitions(testConfig(), -1); err == nil {
		t.Fatal("negative exponent accepted")
	}
	if _, err := NewZipfPartitions(Config{}, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestZipfVolume(t *testing.T) {
	cfg := testConfig()
	g, _ := NewZipfPartitions(cfg, 1.0)
	total := 0
	const epochs = 30
	for e := 0; e < epochs; e++ {
		total += g.Epoch(e).Total()
	}
	want := cfg.Lambda * float64(cfg.Partitions) * epochs
	if math.Abs(float64(total)-want)/want > 0.05 {
		t.Fatalf("zipf volume = %d, want ~%g", total, want)
	}
}

func TestFuncGenerator(t *testing.T) {
	called := 0
	f := &Func{GenName: "custom", Fn: func(t int) *Matrix {
		called++
		m := NewMatrix(1, 1)
		m.Q[0][0] = t
		return m
	}}
	if f.Name() != "custom" {
		t.Fatal("name wrong")
	}
	if got := f.Epoch(5).Q[0][0]; got != 5 || called != 1 {
		t.Fatalf("func generator: got %d, called %d", got, called)
	}
}

func TestMatrixNonNegative(t *testing.T) {
	check := func(seed uint64, epoch8 uint8) bool {
		cfg := testConfig()
		cfg.Seed = seed
		g, err := NewUniform(cfg)
		if err != nil {
			return false
		}
		m := g.Epoch(int(epoch8))
		for p := range m.Q {
			for _, q := range m.Q[p] {
				if q < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
