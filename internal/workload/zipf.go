package workload

import (
	"fmt"

	"repro/internal/stats"
)

// ZipfPartitions skews demand across partitions with a Zipf law while
// keeping the requester distribution uniform. It models the "hot
// partition" situation of Fig. 1 (one partition receiving far more
// queries than others) and is used by the ablation experiments.
type ZipfPartitions struct {
	cfg      Config
	exponent float64
	base     *stats.RNG
}

var _ Generator = (*ZipfPartitions)(nil)

// NewZipfPartitions builds a Zipf-skewed generator. The total expected
// query volume per epoch equals cfg.Lambda × cfg.Partitions, but it is
// distributed over partitions proportionally to 1/(rank+1)^exponent.
func NewZipfPartitions(cfg Config, exponent float64) (*ZipfPartitions, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if exponent < 0 {
		return nil, fmt.Errorf("workload: zipf exponent %g negative", exponent)
	}
	return &ZipfPartitions{cfg: cfg, exponent: exponent, base: stats.NewRNG(cfg.Seed)}, nil
}

// Name implements Generator.
func (g *ZipfPartitions) Name() string { return "zipf-partitions" }

// Epoch implements Generator.
func (g *ZipfPartitions) Epoch(t int) *Matrix {
	if t < 0 {
		panic("workload: negative epoch")
	}
	m := NewMatrix(g.cfg.Partitions, g.cfg.DCs)
	rng := g.base.Stream(uint64(t))
	// Expected total volume for the epoch, assigned to partitions by a
	// Zipf draw per query.
	total := rng.Poisson(g.cfg.Lambda * float64(g.cfg.Partitions))
	z := stats.NewZipf(rng, g.cfg.Partitions, g.exponent)
	for q := 0; q < total; q++ {
		p := z.Next()
		dc := rng.Intn(g.cfg.DCs)
		m.Q[p][dc]++
	}
	return m
}

// Func adapts a plain function into a Generator, for tests and custom
// simulator extensions.
type Func struct {
	GenName string
	Fn      func(t int) *Matrix
}

var _ Generator = (*Func)(nil)

// Name implements Generator.
func (f *Func) Name() string { return f.GenName }

// Epoch implements Generator.
func (f *Func) Epoch(t int) *Matrix { return f.Fn(t) }
