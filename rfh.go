// Package rfh is a from-scratch reproduction of "RFH: A Resilient,
// Fault-Tolerant and High-efficient Replication Algorithm for
// Distributed Cloud Storage" (Qu & Xiong, ICPP 2012).
//
// It bundles a deterministic epoch-driven simulator of a globally
// distributed cloud storage system — geographic topology, consistent-
// hashing ring, overlay routing, heterogeneous servers, Poisson and
// flash-crowd workloads — together with four replication policies: the
// paper's traffic-oriented RFH decision tree and the three baselines it
// is evaluated against (random/Dynamo-style, owner-oriented,
// request-oriented). The experiments subsystem regenerates every figure
// of the paper's evaluation and checks the paper's qualitative claims
// against the simulated data.
//
// Quick start:
//
//	cfg := rfh.DefaultConfig()
//	cfg.Policy = "rfh"
//	cfg.Epochs = 250
//	res, err := rfh.Run(cfg)
//	if err != nil { ... }
//	fmt.Println(res.Final(rfh.SeriesUtilization))
//
// For the paper's figures, see ReproduceFigure and CheckFigure, or run
// the rfhexp command.
package rfh

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/workload"
)

// Re-exported metric series names; every Result carries one point per
// epoch for each of these.
const (
	SeriesUtilization    = metrics.SeriesUtilization
	SeriesTotalReplicas  = metrics.SeriesTotalReplicas
	SeriesAvgReplicas    = metrics.SeriesAvgReplicas
	SeriesReplCost       = metrics.SeriesReplCost
	SeriesReplCostAvg    = metrics.SeriesReplCostAvg
	SeriesMigrTimes      = metrics.SeriesMigrTimes
	SeriesMigrTimesAvg   = metrics.SeriesMigrTimesAvg
	SeriesMigrCost       = metrics.SeriesMigrCost
	SeriesMigrCostAvg    = metrics.SeriesMigrCostAvg
	SeriesLoadImbalance  = metrics.SeriesLoadImbalance
	SeriesPathLength     = metrics.SeriesPathLength
	SeriesUnservedFrac   = metrics.SeriesUnservedFrac
	SeriesAliveServers   = metrics.SeriesAliveServers
	SeriesLostPartitions = metrics.SeriesLostPartitions

	// Consistency-extension series, present when Config.WriteLambda > 0.
	SeriesStalenessMean = metrics.SeriesStalenessMean
	SeriesStalenessMax  = metrics.SeriesStalenessMax
	SeriesStaleFrac     = metrics.SeriesStaleFrac
	SeriesSyncBytes     = metrics.SeriesSyncBytes
	SeriesLostWrites    = metrics.SeriesLostWrites

	// Per-epoch decision activity.
	SeriesReplActions    = metrics.SeriesReplActions
	SeriesMigrActions    = metrics.SeriesMigrActions
	SeriesSuicideActions = metrics.SeriesSuicideActions

	// Latency/SLA series (the paper's "300ms for 99.9% of requests").
	SeriesSLAFrac     = metrics.SeriesSLAFrac
	SeriesLatencyMean = metrics.SeriesLatencyMean
	SeriesLatencyP999 = metrics.SeriesLatencyP999
)

// Extension points for custom replication policies: implement Policy
// and set Config.CustomPolicy. The context exposes the cluster, the
// traffic tracker, the router and the hash ring of the running
// simulation.
type (
	// Policy is a replication algorithm driven once per epoch.
	Policy = policy.Policy
	// PolicyContext is the read-only world view a Policy decides from.
	PolicyContext = policy.Context
	// Decision lists the replications, migrations and suicides a policy
	// wants applied.
	Decision = policy.Decision
	// Replication copies a partition from Source onto Target.
	Replication = policy.Replication
	// Migration moves a partition copy between servers.
	Migration = policy.Migration
	// Suicide removes a partition copy.
	Suicide = policy.Suicide
	// WorkloadGenerator produces one demand matrix per epoch; set
	// Config.CustomWorkload to drive the simulation with your own
	// demand (e.g. a production trace via the workload trace parser).
	WorkloadGenerator = workload.Generator
	// DemandMatrix is one epoch of demand: Q[partition][datacenter].
	DemandMatrix = workload.Matrix
	// ServerID identifies a physical server (dense 0..NumServers-1).
	ServerID = cluster.ServerID
	// DCID identifies a datacenter (dense 0..9 in the paper world).
	DCID = topology.DCID
)

// Config describes one simulation run. Zero value is not valid; start
// from DefaultConfig.
type Config struct {
	// Policy selects the replication algorithm: "rfh", "random",
	// "owner", "request" or "ead" (the Shen [17] extension baseline).
	// Ignored when CustomPolicy is set.
	Policy string
	// CustomPolicy, when non-nil, overrides Policy with a user-supplied
	// implementation.
	CustomPolicy Policy
	// CustomWorkload, when non-nil, overrides Workload with a
	// user-supplied demand generator. Its matrices must match the
	// partition and datacenter counts of the run.
	CustomWorkload WorkloadGenerator

	// Epochs is the simulated horizon (Table I epoch = 10 s).
	Epochs int
	// Workload selects the query setting: "uniform" (the paper's random
	// and even setting), "flash" (the four-stage flash crowd), "zipf"
	// (partition-skewed), "diurnal" (a day/night wave sweeping across
	// the planet) or "drift" (a hotspot advancing one datacenter at a
	// time).
	Workload string
	// Lambda is the Poisson mean of queries per partition per epoch.
	Lambda float64
	// ZipfExponent skews partition popularity when Workload is "zipf".
	ZipfExponent float64
	// DiurnalPeriod is the wave length in epochs for Workload "diurnal"
	// (0 = half the run).
	DiurnalPeriod int
	// DriftHold is how many epochs the hotspot stays on one datacenter
	// for Workload "drift" (0 = 20).
	DriftHold int

	// Partitions overrides the Table I partition count (64) when > 0.
	Partitions int
	// WorldDCs, when > 0, replaces the paper's 10-datacenter world with
	// a synthetic random-geometric world of that many datacenters (each
	// still 10 servers) — the scalability extension.
	WorldDCs int

	// Alpha, Beta, Gamma, Delta, Mu are the Table I decision constants.
	Alpha, Beta, Gamma, Delta, Mu float64
	// FailureRate and MinAvailability parameterise the eq. (14)
	// availability lower limit.
	FailureRate     float64
	MinAvailability float64
	// HubCandidates is the traffic-hub candidate set size (paper: 3).
	HubCandidates int
	// RandomN is the random baseline's static copy target (default 8).
	RandomN int

	// Serving selects the query-serving model: "path" (the paper's
	// eq. 2–6 overflow chain, default) or "nearest" (idealised direct
	// lookup).
	Serving string

	// WriteLambda, when positive, enables the consistency-maintenance
	// extension: Poisson(WriteLambda) writes per partition per epoch
	// land at primaries and replicas catch up asynchronously, producing
	// the SeriesStaleness* series.
	WriteLambda float64
	// WriteDeltaSize is the bytes one version transfer costs (0 = 4 KB).
	WriteDeltaSize int64
	// SyncBandwidth is the per-server anti-entropy budget in bytes per
	// epoch (0 = 1 MB).
	SyncBandwidth int64

	// ChurnFailProb, when positive, fails each alive server with this
	// probability every epoch; servers recover after ChurnMTTR epochs
	// (0 = 20).
	ChurnFailProb float64
	ChurnMTTR     int

	// HopLatencyMs, ServiceLatencyMs and SLAThresholdMs parameterise
	// the latency/SLA series; zeros select the defaults (50 ms per hop,
	// 10 ms service, 300 ms SLA — the paper's §I motivation).
	HopLatencyMs     float64
	ServiceLatencyMs float64
	SLAThresholdMs   float64

	// Workers bounds the per-epoch parallel fan-out; 0 = GOMAXPROCS.
	Workers int
	// Seed makes runs reproducible.
	Seed uint64
}

// DefaultConfig returns the Table I configuration with the RFH policy
// under the uniform workload.
func DefaultConfig() Config {
	th := traffic.DefaultThresholds()
	return Config{
		Policy:          "rfh",
		Epochs:          250,
		Workload:        "uniform",
		Lambda:          300,
		ZipfExponent:    1.0,
		Alpha:           th.Alpha,
		Beta:            th.Beta,
		Gamma:           th.Gamma,
		Delta:           th.Delta,
		Mu:              th.Mu,
		FailureRate:     0.1,
		MinAvailability: 0.8,
		HubCandidates:   3,
		RandomN:         policy.DefaultRandomN,
		Serving:         "path",
		Seed:            1,
	}
}

// FailureEvent kills, revives and/or joins servers at the start of an
// epoch. Server ids are dense indices (0..99 initially in the paper
// world; joined servers extend the range). JoinDCs adds one brand-new
// server per listed datacenter (0..9).
type FailureEvent struct {
	Epoch   int
	Fail    []int
	Recover []int
	JoinDCs []int
}

// Result carries the per-epoch metric series of one run plus the final
// placement snapshot.
type Result struct {
	Policy string
	Epochs int
	// Placement is the end-of-run replica distribution, one row per
	// datacenter (name, alive servers, hosted copies, primaries).
	Placement []PlacementDC
	// PartitionCopies is the end-of-run copy count per partition.
	PartitionCopies []int
	recorder        *metrics.Recorder
}

// PlacementDC is one datacenter's share of the final replica fleet.
type PlacementDC struct {
	DC           int
	Name         string
	AliveServers int
	Replicas     int
	Primaries    int
}

// Names returns all recorded series names.
func (r *Result) Names() []string { return r.recorder.Names() }

// Series returns the per-epoch points of a named series (nil when the
// name is unknown). The slice is a copy.
func (r *Result) Series(name string) []float64 {
	s := r.recorder.Series(name)
	if s == nil {
		return nil
	}
	out := make([]float64, len(s.Points))
	copy(out, s.Points)
	return out
}

// Final returns the last value of a named series (0 when unknown).
func (r *Result) Final(name string) float64 {
	s := r.recorder.Series(name)
	if s == nil {
		return 0
	}
	return s.Last()
}

// Mean returns the mean of a named series over all epochs.
func (r *Result) Mean(name string) float64 {
	s := r.recorder.Series(name)
	if s == nil {
		return 0
	}
	return s.Mean()
}

// Run simulates the configured system and returns its metric series.
func Run(cfg Config) (*Result, error) {
	return RunWithFailures(cfg, nil)
}

// RunWithFailures is Run plus scheduled server failure/recovery events
// (the Fig. 10 experiment shape).
func RunWithFailures(cfg Config, events []FailureEvent) (*Result, error) {
	eng, err := buildEngine(cfg)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	for _, ev := range events {
		fe := sim.FailureEvent{Epoch: ev.Epoch}
		for _, s := range ev.Fail {
			fe.Fail = append(fe.Fail, cluster.ServerID(s))
		}
		for _, s := range ev.Recover {
			fe.Recover = append(fe.Recover, cluster.ServerID(s))
		}
		for _, dc := range ev.JoinDCs {
			fe.Join = append(fe.Join, topology.DCID(dc))
		}
		eng.ScheduleFailure(fe)
	}
	rec, err := eng.Run()
	if err != nil {
		return nil, err
	}
	res := &Result{Policy: eng.Policy().Name(), Epochs: eng.Epoch(), recorder: rec}
	snap := eng.Snapshot()
	res.PartitionCopies = snap.PartitionCopies
	for _, d := range snap.PerDC {
		res.Placement = append(res.Placement, PlacementDC{
			DC: int(d.DC), Name: d.Name, AliveServers: d.AliveServers,
			Replicas: d.Replicas, Primaries: d.Primaries,
		})
	}
	return res, nil
}

// buildEngine assembles the paper world, Table I cluster, workload and
// policy from a flat Config.
func buildEngine(cfg Config) (*sim.Engine, error) {
	var w *topology.World
	if cfg.WorldDCs > 0 {
		var err error
		w, err = topology.RandomGeometricWorld(cfg.WorldDCs, 3, cfg.Seed^0x3013)
		if err != nil {
			return nil, err
		}
	} else {
		w = topology.PaperWorld()
	}
	rt, err := network.NewRouter(w)
	if err != nil {
		return nil, err
	}
	spec := cluster.DefaultSpec()
	spec.Seed = cfg.Seed
	if cfg.Partitions > 0 {
		spec.Partitions = cfg.Partitions
	}
	cl, err := cluster.New(w, spec)
	if err != nil {
		return nil, err
	}

	wcfg := workload.Config{
		Partitions: cl.NumPartitions(),
		DCs:        w.NumDCs(),
		Lambda:     cfg.Lambda,
		Seed:       cfg.Seed ^ 0xA11CE,
	}
	var gen workload.Generator
	if cfg.CustomWorkload != nil {
		gen = cfg.CustomWorkload
	} else {
		gen, err = builtinWorkload(cfg, w, wcfg)
	}
	if err != nil {
		return nil, err
	}
	pol := cfg.CustomPolicy
	if pol == nil {
		switch cfg.Policy {
		case "rfh", "":
			pol = core.NewRFH()
		case "random":
			pol = policy.NewRandomN(cfg.RandomN)
		case "owner":
			pol = policy.NewOwnerOriented()
		case "request":
			pol = policy.NewRequestOriented(cfg.Alpha)
		case "ead":
			pol = policy.NewEAD(0)
		default:
			return nil, fmt.Errorf("rfh: unknown policy %q (want rfh, random, owner, request or ead)", cfg.Policy)
		}
	}
	return assembleEngine(cfg, cl, rt, gen, pol)
}

// builtinWorkload resolves the named workload generators.
func builtinWorkload(cfg Config, w *topology.World, wcfg workload.Config) (workload.Generator, error) {
	var gen workload.Generator
	var err error
	switch cfg.Workload {
	case "uniform", "":
		gen, err = workload.NewUniform(wcfg)
	case "flash":
		if cfg.WorldDCs > 0 {
			return nil, fmt.Errorf("rfh: the flash workload is defined on the paper world; use drift or diurnal with WorldDCs")
		}
		gen, err = workload.NewPaperFlashCrowd(wcfg, w, cfg.Epochs)
	case "zipf":
		gen, err = workload.NewZipfPartitions(wcfg, cfg.ZipfExponent)
	case "diurnal":
		period := cfg.DiurnalPeriod
		if period == 0 {
			period = cfg.Epochs / 2
		}
		gen, err = workload.NewDiurnal(wcfg, w, period, 0.8)
	case "drift":
		hold := cfg.DriftHold
		if hold == 0 {
			hold = 20
		}
		gen, err = workload.NewDrift(wcfg, hold, 0.8)
	default:
		return nil, fmt.Errorf("rfh: unknown workload %q (want uniform, flash, zipf, diurnal or drift)", cfg.Workload)
	}
	return gen, err
}

// assembleEngine converts the flat Config into the sim configuration.
func assembleEngine(cfg Config, cl *cluster.Cluster, rt *network.Router, gen workload.Generator, pol policy.Policy) (*sim.Engine, error) {
	scfg := sim.DefaultConfig()
	scfg.Epochs = cfg.Epochs
	scfg.Thresholds = traffic.Thresholds{
		Alpha: cfg.Alpha, Beta: cfg.Beta, Gamma: cfg.Gamma, Delta: cfg.Delta, Mu: cfg.Mu,
	}
	scfg.FailureRate = cfg.FailureRate
	scfg.MinAvailability = cfg.MinAvailability
	scfg.HubCandidates = cfg.HubCandidates
	scfg.Workers = cfg.Workers
	scfg.Seed = cfg.Seed
	scfg.ChurnFailProb = cfg.ChurnFailProb
	scfg.ChurnMTTR = cfg.ChurnMTTR
	scfg.WriteLambda = cfg.WriteLambda
	scfg.WriteDeltaSize = cfg.WriteDeltaSize
	scfg.SyncBandwidth = cfg.SyncBandwidth
	if cfg.HopLatencyMs != 0 || cfg.ServiceLatencyMs != 0 || cfg.SLAThresholdMs != 0 {
		lm := metrics.DefaultLatencyModel()
		if cfg.HopLatencyMs != 0 {
			lm.HopLatencyMs = cfg.HopLatencyMs
		}
		if cfg.ServiceLatencyMs != 0 {
			lm.ServiceMs = cfg.ServiceLatencyMs
		}
		if cfg.SLAThresholdMs != 0 {
			lm.SLAThresholdMs = cfg.SLAThresholdMs
		}
		scfg.Latency = lm
	}
	switch cfg.Serving {
	case "path", "":
		scfg.Serving = sim.ServePath
	case "nearest":
		scfg.Serving = sim.ServeNearest
	default:
		return nil, fmt.Errorf("rfh: unknown serving model %q (want path or nearest)", cfg.Serving)
	}
	return sim.New(cl, rt, gen, pol, scfg)
}

// LoadTraceWorkload parses a CSV demand trace (rows of
// "epoch,partition,q_dc0,...,q_dcN-1") into a generator that replays
// and cycles it — the hook for driving the simulator with production
// traces. partitions and dcs must match the run's dimensions.
func LoadTraceWorkload(name string, r io.Reader, partitions, dcs int) (WorkloadGenerator, error) {
	return workload.NewTrace(name, r, partitions, dcs)
}

// EmitTrace writes the configured workload's demand as a CSV trace
// ("epoch,partition,q_dc0,...") for the given number of epochs — the
// counterpart of LoadTraceWorkload, useful for sharing reproducible
// demand between tools.
func EmitTrace(w io.Writer, cfg Config, epochs int) error {
	if epochs <= 0 {
		return fmt.Errorf("rfh: trace needs at least one epoch")
	}
	world := topology.PaperWorld()
	var err error
	if cfg.WorldDCs > 0 {
		world, err = topology.RandomGeometricWorld(cfg.WorldDCs, 3, cfg.Seed^0x3013)
		if err != nil {
			return err
		}
	}
	partitions := cfg.Partitions
	if partitions == 0 {
		partitions = cluster.DefaultSpec().Partitions
	}
	wcfg := workload.Config{
		Partitions: partitions,
		DCs:        world.NumDCs(),
		Lambda:     cfg.Lambda,
		Seed:       cfg.Seed ^ 0xA11CE,
	}
	gen := cfg.CustomWorkload
	if gen == nil {
		gen, err = builtinWorkload(cfg, world, wcfg)
		if err != nil {
			return err
		}
	}
	cw := csv.NewWriter(w)
	row := make([]string, 2+world.NumDCs())
	for e := 0; e < epochs; e++ {
		m := gen.Epoch(e)
		for p := 0; p < m.Partitions(); p++ {
			row[0] = strconv.Itoa(e)
			row[1] = strconv.Itoa(p)
			for d, q := range m.Q[p] {
				row[2+d] = strconv.Itoa(q)
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// NumServers returns the number of physical servers in the paper world
// (10 datacenters × 1 room × 2 racks × 5 servers).
func NumServers() int {
	return topology.PaperWorld().NumDCs() * 10
}
