package rfh

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Epochs = 40
	cfg.Partitions = 16
	return cfg
}

func TestRunAllBuiltinPolicies(t *testing.T) {
	for _, pol := range []string{"rfh", "random", "owner", "request", "ead"} {
		cfg := quickConfig()
		cfg.Policy = pol
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if res.Policy != pol {
			t.Fatalf("result policy = %s", res.Policy)
		}
		if res.Epochs != 40 {
			t.Fatalf("%s: epochs = %d", pol, res.Epochs)
		}
		if got := res.Final(SeriesTotalReplicas); got < 16 {
			t.Fatalf("%s: %g replicas below partition count", pol, got)
		}
		u := res.Final(SeriesUtilization)
		if u <= 0 || u > 1 {
			t.Fatalf("%s: utilization %g", pol, u)
		}
	}
}

func TestRunAllWorkloads(t *testing.T) {
	for _, wl := range []string{"uniform", "flash", "zipf", "diurnal", "drift"} {
		cfg := quickConfig()
		cfg.Workload = wl
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		if len(res.Series(SeriesUtilization)) != 40 {
			t.Fatalf("%s: wrong series length", wl)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Policy = "zeus" },
		func(c *Config) { c.Workload = "storm" },
		func(c *Config) { c.Serving = "teleport" },
		func(c *Config) { c.Epochs = 0 },
		func(c *Config) { c.Beta = 0.5 },
		func(c *Config) { c.Lambda = -1 },
	}
	for i, mut := range bad {
		cfg := quickConfig()
		mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() []float64 {
		res, err := Run(quickConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res.Series(SeriesUtilization)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverge at epoch %d", i)
		}
	}
}

func TestResultAccessors(t *testing.T) {
	res, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names()) < 10 {
		t.Fatalf("names = %v", res.Names())
	}
	if res.Series("no-such-series") != nil {
		t.Fatal("unknown series not nil")
	}
	if res.Final("no-such-series") != 0 || res.Mean("no-such-series") != 0 {
		t.Fatal("unknown series stats not zero")
	}
	// Series returns a copy.
	s := res.Series(SeriesUtilization)
	s[0] = -1
	if res.Series(SeriesUtilization)[0] == -1 {
		t.Fatal("Series aliases internal state")
	}
	if res.Mean(SeriesUtilization) <= 0 {
		t.Fatal("mean utilization not positive")
	}
}

func TestRunWithFailures(t *testing.T) {
	cfg := quickConfig()
	res, err := RunWithFailures(cfg, []FailureEvent{
		{Epoch: 10, Fail: []int{0, 1, 2}},
		{Epoch: 25, Recover: []int{0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	alive := res.Series(SeriesAliveServers)
	if alive[9] != 100 || alive[10] != 97 || alive[25] != 98 {
		t.Fatalf("alive trajectory: %g, %g, %g", alive[9], alive[10], alive[25])
	}
}

func TestCustomPolicy(t *testing.T) {
	cfg := quickConfig()
	cfg.CustomPolicy = noopPolicy{}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "noop" {
		t.Fatalf("policy = %s", res.Policy)
	}
	// A policy that never replicates leaves exactly one copy per
	// partition (the seeded primary).
	if got := res.Final(SeriesTotalReplicas); got != 16 {
		t.Fatalf("noop run ended with %g replicas", got)
	}
}

// noopPolicy does nothing, validating the custom-policy extension point.
type noopPolicy struct{}

func (noopPolicy) Name() string                   { return "noop" }
func (noopPolicy) Decide(*PolicyContext) Decision { return Decision{} }

func TestNumServers(t *testing.T) {
	if NumServers() != 100 {
		t.Fatalf("NumServers = %d", NumServers())
	}
}

func TestExperimentsFacade(t *testing.T) {
	exp, err := NewExperiments(ExperimentOptions{
		EpochsRandom: 60, EpochsFlash: 80, EpochsFailure: 80, FailEpoch: 40, FailServers: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	fig, err := exp.Figure("3a")
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("figure 3a has %d series", len(fig.Series))
	}
	claims, err := exp.Check("3a")
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) == 0 {
		t.Fatal("no claims for 3a")
	}
	var buf bytes.Buffer
	if err := exp.WriteFigureCSV(&buf, "3a"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "epoch,") {
		t.Fatalf("CSV header: %q", buf.String()[:20])
	}
	rows := exp.TableI()
	if len(rows) == 0 {
		t.Fatal("empty Table I")
	}
	if _, err := exp.Figure("zz"); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if len(FigureIDs()) != 25 {
		t.Fatalf("FigureIDs = %d entries", len(FigureIDs()))
	}
	if len(AblationNames()) == 0 {
		t.Fatal("no ablation names")
	}
}

func TestExperimentOptionsDefaults(t *testing.T) {
	// Zero options select the paper defaults and validate.
	if _, err := NewExperiments(ExperimentOptions{}); err != nil {
		t.Fatal(err)
	}
	// Invalid overrides surface as errors.
	if _, err := NewExperiments(ExperimentOptions{EpochsFailure: 50, FailEpoch: 60}); err == nil {
		t.Fatal("fail epoch beyond run accepted")
	}
}

func TestSyntheticWorldRun(t *testing.T) {
	cfg := quickConfig()
	cfg.WorldDCs = 24
	cfg.Workload = "drift"
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Final(SeriesAliveServers); got != 240 {
		t.Fatalf("synthetic world servers = %g, want 240", got)
	}
	if res.Final(SeriesUtilization) <= 0 {
		t.Fatal("no serving on the synthetic world")
	}
}

func TestSyntheticWorldRejectsFlash(t *testing.T) {
	cfg := quickConfig()
	cfg.WorldDCs = 16
	cfg.Workload = "flash"
	if _, err := Run(cfg); err == nil {
		t.Fatal("flash on synthetic world accepted")
	}
}

func TestChurnFacade(t *testing.T) {
	cfg := quickConfig()
	cfg.ChurnFailProb = 0.02
	cfg.ChurnMTTR = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	min := 100.0
	for _, v := range res.Series(SeriesAliveServers) {
		if v < min {
			min = v
		}
	}
	if min == 100 {
		t.Fatal("churn never took a server down")
	}
}

func TestSLAFacade(t *testing.T) {
	cfg := quickConfig()
	cfg.SLAThresholdMs = 60 // tight: only 0-1 hop lookups qualify
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Series(SeriesSLAFrac)
	if len(s) != cfg.Epochs {
		t.Fatal("SLA series missing")
	}
	loose := quickConfig()
	looseRes, err := Run(loose)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final(SeriesSLAFrac) > looseRes.Final(SeriesSLAFrac) {
		t.Fatal("tighter SLA bound produced a higher satisfaction fraction")
	}
}

func TestConsistencyFacade(t *testing.T) {
	cfg := quickConfig()
	cfg.WriteLambda = 25
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series(SeriesStalenessMean)) != cfg.Epochs {
		t.Fatal("staleness series missing")
	}
	if res.Final(SeriesSyncBytes) == 0 {
		t.Fatal("no sync traffic")
	}
}

func TestJoinFacade(t *testing.T) {
	cfg := quickConfig()
	res, err := RunWithFailures(cfg, []FailureEvent{{Epoch: 5, JoinDCs: []int{0, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Final(SeriesAliveServers); got != 102 {
		t.Fatalf("alive after join = %g", got)
	}
}

func TestResultPlacement(t *testing.T) {
	res, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placement) != 10 {
		t.Fatalf("placement rows = %d", len(res.Placement))
	}
	total := 0
	for _, d := range res.Placement {
		total += d.Replicas
	}
	if float64(total) != res.Final(SeriesTotalReplicas) {
		t.Fatalf("placement total %d != series %g", total, res.Final(SeriesTotalReplicas))
	}
	if len(res.PartitionCopies) != 16 {
		t.Fatalf("partition copies = %d rows", len(res.PartitionCopies))
	}
	for p, c := range res.PartitionCopies {
		if c < 1 {
			t.Fatalf("partition %d has %d copies", p, c)
		}
	}
}

func TestCustomWorkloadAndTrace(t *testing.T) {
	// Build a 2-epoch trace for 16 partitions × 10 DCs, all demand at
	// DC 0, and run it through the public API.
	var sb strings.Builder
	for e := 0; e < 2; e++ {
		for p := 0; p < 16; p++ {
			fmt.Fprintf(&sb, "%d,%d,50,0,0,0,0,0,0,0,0,0\n", e, p)
		}
	}
	gen, err := LoadTraceWorkload("test-trace", strings.NewReader(sb.String()), 16, 10)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig()
	cfg.CustomWorkload = gen
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final(SeriesUtilization) <= 0 {
		t.Fatal("trace workload produced no serving")
	}
}

func TestEmitTraceRoundTrip(t *testing.T) {
	cfg := quickConfig()
	cfg.Workload = "drift"
	var buf bytes.Buffer
	if err := EmitTrace(&buf, cfg, 3); err != nil {
		t.Fatal(err)
	}
	gen, err := LoadTraceWorkload("replay", bytes.NewReader(buf.Bytes()), 16, 10)
	if err != nil {
		t.Fatal(err)
	}
	// The replayed trace matches the original generator epoch by epoch.
	cfg2 := quickConfig()
	cfg2.CustomWorkload = gen
	res, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final(SeriesUtilization) <= 0 {
		t.Fatal("replayed trace produced no serving")
	}
	if err := EmitTrace(&buf, cfg, 0); err == nil {
		t.Fatal("zero-epoch trace accepted")
	}
	bad := quickConfig()
	bad.Workload = "storm"
	if err := EmitTrace(&buf, bad, 2); err == nil {
		t.Fatal("bad workload accepted")
	}
}
